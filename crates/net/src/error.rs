//! Typed errors for the network layer.

use rekey_keytree::KeyTreeError;
use std::error::Error;
use std::fmt;
use std::io;

/// Why a server refused a handshake. Carried on the wire as a one-byte
/// code inside a `Reject` frame, so both sides agree on the cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The client spoke an unknown protocol version.
    BadVersion,
    /// The member id is not registered with the daemon.
    UnknownMember,
    /// The HMAC over the server nonce did not verify.
    BadAuth,
    /// The server is shutting down and no longer admits sessions.
    ShuttingDown,
}

impl RejectReason {
    /// Wire code of the reason.
    pub fn code(self) -> u8 {
        match self {
            RejectReason::BadVersion => 1,
            RejectReason::UnknownMember => 2,
            RejectReason::BadAuth => 3,
            RejectReason::ShuttingDown => 4,
        }
    }

    /// Parses a wire code back into a reason.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => RejectReason::BadVersion,
            2 => RejectReason::UnknownMember,
            3 => RejectReason::BadAuth,
            4 => RejectReason::ShuttingDown,
            _ => return None,
        })
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::BadVersion => "unsupported protocol version",
            RejectReason::UnknownMember => "member not registered",
            RejectReason::BadAuth => "handshake authentication failed",
            RejectReason::ShuttingDown => "server shutting down",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong on the socket path: transport
/// failures, framing violations, malformed protocol frames, handshake
/// rejections, and rekey payloads the key tree refuses.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket operation failed.
    Io(io::Error),
    /// A peer announced a frame longer than the negotiated maximum.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// Maximum this endpoint accepts.
        max: usize,
    },
    /// A frame decoded structurally but its contents are invalid.
    Malformed {
        /// Which invariant the frame violates.
        what: &'static str,
    },
    /// A frame carried an unknown type tag.
    UnknownFrame(u8),
    /// The peer rejected our handshake.
    Rejected(RejectReason),
    /// A `Rekey` frame's payload failed the `rekey_keytree` codec.
    Codec {
        /// Epoch the sender claimed, if the envelope got that far.
        epoch: Option<u64>,
    },
    /// Applying a rekey message to the local member state failed.
    KeyTree(KeyTreeError),
    /// A NACKed epoch has been evicted from the server's
    /// retransmission window; the client cannot catch up over this
    /// protocol and must re-bootstrap out of band.
    EpochEvicted {
        /// The epoch the client asked for.
        requested: u64,
        /// Oldest epoch the server still holds.
        oldest: u64,
    },
    /// An operation did not complete before its deadline.
    Timeout {
        /// The operation that timed out.
        what: &'static str,
    },
    /// The connection (or the whole daemon) is closed.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            NetError::Malformed { what } => write!(f, "malformed frame: {what}"),
            NetError::UnknownFrame(tag) => write!(f, "unknown frame type {tag:#04x}"),
            NetError::Rejected(reason) => write!(f, "handshake rejected: {reason}"),
            NetError::Codec { epoch: Some(e) } => {
                write!(f, "rekey payload for epoch {e} failed to decode")
            }
            NetError::Codec { epoch: None } => write!(f, "rekey payload failed to decode"),
            NetError::KeyTree(e) => write!(f, "rekey message rejected: {e}"),
            NetError::EpochEvicted { requested, oldest } => write!(
                f,
                "epoch {requested} evicted from retransmission window (oldest retained: {oldest})"
            ),
            NetError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            NetError::Closed => f.write_str("connection closed"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::KeyTree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<KeyTreeError> for NetError {
    fn from(e: KeyTreeError) -> Self {
        NetError::KeyTree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_codes_roundtrip() {
        for reason in [
            RejectReason::BadVersion,
            RejectReason::UnknownMember,
            RejectReason::BadAuth,
            RejectReason::ShuttingDown,
        ] {
            assert_eq!(RejectReason::from_code(reason.code()), Some(reason));
        }
        assert_eq!(RejectReason::from_code(0), None);
        assert_eq!(RejectReason::from_code(200), None);
    }

    #[test]
    fn display_names_the_failure() {
        let err = NetError::EpochEvicted {
            requested: 3,
            oldest: 9,
        };
        assert!(err.to_string().contains("epoch 3"));
        assert!(err.to_string().contains("oldest retained: 9"));
        let err = NetError::FrameTooLarge { len: 10, max: 4 };
        assert!(err.to_string().contains("10"));
        assert!(NetError::Rejected(RejectReason::BadAuth)
            .to_string()
            .contains("authentication"));
    }
}
