//! The rekey-net session protocol: typed frames inside the length
//! prefix of [`crate::frame`].
//!
//! A session always opens with the server's challenge and the client's
//! authenticated response:
//!
//! ```text
//! server → client   ServerHello { version, nonce }
//! client → server   Hello { version, member, tag = HMAC(ik, ...) }
//! server → client   Welcome { latest_epoch }   (or Reject { reason })
//! client → server   Nack { epochs }            (resubscribe / catch up)
//! ```
//!
//! After the handshake the server pushes `Rekey` frames (one per
//! epoch, payload = the `rekey_keytree::message::codec` message
//! encoding, prefixed by the server's publish wall-clock stamp), the
//! client may `Nack` missed epochs at any time, and the server answers
//! NACKs either with the retransmitted `Rekey` frames or a `Gap` when
//! the epoch has left its retransmission window. After installing an
//! epoch's DEK the client reports the measured end-to-end propagation
//! lag with an `Ack` — the server folds those into its
//! `net_propagation_seconds` histogram. `Bye` closes either direction
//! gracefully.
//!
//! Every frame leads with a one-byte type tag; the two handshake
//! frames additionally carry [`PROTO_VERSION`] so incompatible
//! endpoints fail fast with a typed error instead of misparsing.
//! All integers are big-endian, matching the key-tree codec.

use crate::error::{NetError, RejectReason};
use rekey_crypto::hmac::HmacSha256;
use rekey_crypto::Key;
use rekey_keytree::MemberId;

/// Protocol version spoken by this build. Bumped on any wire change.
/// v2: `Rekey` gained the publish wall-clock stamp, `Ack` was added.
pub const PROTO_VERSION: u8 = 2;

/// Server nonce length (the HMAC challenge).
pub const NONCE_LEN: usize = 32;

/// Authentication tag length (HMAC-SHA256).
pub const TAG_LEN: usize = 32;

/// Most epochs one `Nack` frame may carry. A client missing more
/// re-NACKs after draining the first batch.
pub const MAX_NACK_EPOCHS: usize = 1024;

const T_SERVER_HELLO: u8 = 1;
const T_HELLO: u8 = 2;
const T_WELCOME: u8 = 3;
const T_REJECT: u8 = 4;
const T_REKEY: u8 = 5;
const T_NACK: u8 = 6;
const T_GAP: u8 = 7;
const T_BYE: u8 = 8;
const T_ACK: u8 = 9;

/// One protocol frame (the payload of one length-prefixed wire frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Server challenge, first frame of every connection.
    ServerHello {
        /// Fresh random challenge the client must HMAC.
        nonce: [u8; NONCE_LEN],
    },
    /// Client authentication response.
    Hello {
        /// The member identifying itself.
        member: MemberId,
        /// `HMAC(individual_key, HELLO_CONTEXT ‖ nonce ‖ member)`.
        tag: [u8; TAG_LEN],
    },
    /// Handshake accepted; the session is live.
    Welcome {
        /// Latest epoch the server has published (0 = none yet).
        latest_epoch: u64,
    },
    /// Handshake refused; the server closes after sending this.
    Reject {
        /// Why.
        reason: RejectReason,
    },
    /// One epoch's multicast rekey message, encoded with
    /// `rekey_keytree::message::codec::encode_message`.
    Rekey {
        /// Server wall clock at fan-out (UNIX nanoseconds), stamped
        /// once into the shared frame so clients can measure true
        /// end-to-end rekey propagation. 0 when unknown (e.g. a clock
        /// before the epoch).
        stamp_unix_ns: u64,
        /// The codec bytes, decoded lazily by the receiver.
        payload: Vec<u8>,
    },
    /// Client asks for retransmission of specific epochs.
    Nack {
        /// Epochs the client is missing, at most [`MAX_NACK_EPOCHS`].
        epochs: Vec<u64>,
    },
    /// Server cannot retransmit a NACKed epoch: it has been evicted
    /// from the retransmission window.
    Gap {
        /// Oldest epoch still retransmittable.
        oldest: u64,
        /// The evicted epoch the client asked for.
        requested: u64,
    },
    /// Client report after installing an epoch's DEK: the measured
    /// propagation lag from the server's fan-out stamp to DEK install.
    /// Purely observational — the server records it and never replies.
    Ack {
        /// The installed epoch.
        epoch: u64,
        /// Measured install-minus-publish lag in nanoseconds (clamped
        /// to 0 on clock skew).
        lag_ns: u64,
    },
    /// Graceful close.
    Bye,
}

/// Current wall clock as UNIX nanoseconds (0 if the clock reads before
/// the epoch), the timebase of [`Frame::Rekey::stamp_unix_ns`].
pub fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Domain-separation context for the handshake HMAC.
pub const HELLO_CONTEXT: &[u8] = b"rekey-net hello v1";

/// Computes the `Hello` authentication tag: an HMAC under the member's
/// individual key over the server nonce and the member id, bound to
/// this protocol by [`HELLO_CONTEXT`].
pub fn hello_tag(individual_key: &Key, nonce: &[u8; NONCE_LEN], member: MemberId) -> [u8; TAG_LEN] {
    let mut mac = HmacSha256::new(individual_key.as_bytes());
    mac.update(HELLO_CONTEXT);
    mac.update(nonce);
    mac.update(&member.0.to_be_bytes());
    mac.finalize()
}

/// Serializes a frame into a payload buffer (no length prefix).
pub fn encode(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::ServerHello { nonce } => {
            let mut buf = Vec::with_capacity(2 + NONCE_LEN);
            buf.push(T_SERVER_HELLO);
            buf.push(PROTO_VERSION);
            buf.extend_from_slice(nonce);
            buf
        }
        Frame::Hello { member, tag } => {
            let mut buf = Vec::with_capacity(2 + 8 + TAG_LEN);
            buf.push(T_HELLO);
            buf.push(PROTO_VERSION);
            buf.extend_from_slice(&member.0.to_be_bytes());
            buf.extend_from_slice(tag);
            buf
        }
        Frame::Welcome { latest_epoch } => {
            let mut buf = Vec::with_capacity(1 + 8);
            buf.push(T_WELCOME);
            buf.extend_from_slice(&latest_epoch.to_be_bytes());
            buf
        }
        Frame::Reject { reason } => vec![T_REJECT, reason.code()],
        Frame::Rekey {
            stamp_unix_ns,
            payload,
        } => {
            let mut buf = Vec::with_capacity(1 + 8 + payload.len());
            buf.push(T_REKEY);
            buf.extend_from_slice(&stamp_unix_ns.to_be_bytes());
            buf.extend_from_slice(payload);
            buf
        }
        Frame::Nack { epochs } => {
            debug_assert!(epochs.len() <= MAX_NACK_EPOCHS);
            let mut buf = Vec::with_capacity(1 + 4 + 8 * epochs.len());
            buf.push(T_NACK);
            buf.extend_from_slice(&(epochs.len() as u32).to_be_bytes());
            for &epoch in epochs {
                buf.extend_from_slice(&epoch.to_be_bytes());
            }
            buf
        }
        Frame::Gap { oldest, requested } => {
            let mut buf = Vec::with_capacity(1 + 16);
            buf.push(T_GAP);
            buf.extend_from_slice(&oldest.to_be_bytes());
            buf.extend_from_slice(&requested.to_be_bytes());
            buf
        }
        Frame::Ack { epoch, lag_ns } => {
            let mut buf = Vec::with_capacity(1 + 16);
            buf.push(T_ACK);
            buf.extend_from_slice(&epoch.to_be_bytes());
            buf.extend_from_slice(&lag_ns.to_be_bytes());
            buf
        }
        Frame::Bye => vec![T_BYE],
    }
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_first_chunk::<8>()?;
    *buf = rest;
    Some(u64::from_be_bytes(*head))
}

fn take_array<const N: usize>(buf: &mut &[u8]) -> Option<[u8; N]> {
    let (head, rest) = buf.split_first_chunk::<N>()?;
    *buf = rest;
    Some(*head)
}

/// Parses a frame payload.
///
/// # Errors
///
/// [`NetError::UnknownFrame`] for an unrecognized type tag and
/// [`NetError::Malformed`] for truncated fields, trailing garbage,
/// version mismatches, or a NACK list above [`MAX_NACK_EPOCHS`].
pub fn decode(payload: &[u8]) -> Result<Frame, NetError> {
    let malformed = |what: &'static str| NetError::Malformed { what };
    let (&tag, mut rest) = payload
        .split_first()
        .ok_or(malformed("empty frame payload"))?;
    let frame = match tag {
        T_SERVER_HELLO => {
            let (&version, mut body) = rest
                .split_first()
                .ok_or(malformed("server-hello missing version"))?;
            if version != PROTO_VERSION {
                return Err(malformed("server-hello protocol version mismatch"));
            }
            let nonce =
                take_array::<NONCE_LEN>(&mut body).ok_or(malformed("server-hello truncated"))?;
            rest = body;
            Frame::ServerHello { nonce }
        }
        T_HELLO => {
            let (&version, mut body) = rest
                .split_first()
                .ok_or(malformed("hello missing version"))?;
            if version != PROTO_VERSION {
                return Err(malformed("hello protocol version mismatch"));
            }
            let member = take_u64(&mut body).ok_or(malformed("hello truncated"))?;
            let tag = take_array::<TAG_LEN>(&mut body).ok_or(malformed("hello truncated"))?;
            rest = body;
            Frame::Hello {
                member: MemberId(member),
                tag,
            }
        }
        T_WELCOME => {
            let latest_epoch = take_u64(&mut rest).ok_or(malformed("welcome truncated"))?;
            Frame::Welcome { latest_epoch }
        }
        T_REJECT => {
            let (&code, body) = rest.split_first().ok_or(malformed("reject truncated"))?;
            rest = body;
            let reason =
                RejectReason::from_code(code).ok_or(malformed("reject carries unknown reason"))?;
            Frame::Reject { reason }
        }
        T_REKEY => {
            let stamp_unix_ns = take_u64(&mut rest).ok_or(malformed("rekey truncated"))?;
            if rest.is_empty() {
                return Err(malformed("rekey frame with no payload"));
            }
            let payload = rest.to_vec();
            rest = &[];
            Frame::Rekey {
                stamp_unix_ns,
                payload,
            }
        }
        T_NACK => {
            let (head, mut body) = rest
                .split_first_chunk::<4>()
                .ok_or(malformed("nack truncated"))?;
            let count = u32::from_be_bytes(*head) as usize;
            if count > MAX_NACK_EPOCHS {
                return Err(malformed("nack epoch list too long"));
            }
            let mut epochs = Vec::with_capacity(count);
            for _ in 0..count {
                epochs.push(take_u64(&mut body).ok_or(malformed("nack truncated"))?);
            }
            rest = body;
            Frame::Nack { epochs }
        }
        T_GAP => {
            let oldest = take_u64(&mut rest).ok_or(malformed("gap truncated"))?;
            let requested = take_u64(&mut rest).ok_or(malformed("gap truncated"))?;
            Frame::Gap { oldest, requested }
        }
        T_ACK => {
            let epoch = take_u64(&mut rest).ok_or(malformed("ack truncated"))?;
            let lag_ns = take_u64(&mut rest).ok_or(malformed("ack truncated"))?;
            Frame::Ack { epoch, lag_ns }
        }
        T_BYE => Frame::Bye,
        other => return Err(NetError::UnknownFrame(other)),
    };
    if !rest.is_empty() {
        return Err(malformed("trailing bytes after frame"));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        assert_eq!(decode(&encode(&frame)).unwrap(), frame);
    }

    #[test]
    fn every_frame_roundtrips() {
        roundtrip(Frame::ServerHello { nonce: [9; 32] });
        roundtrip(Frame::Hello {
            member: MemberId(42),
            tag: [7; 32],
        });
        roundtrip(Frame::Welcome { latest_epoch: 17 });
        roundtrip(Frame::Reject {
            reason: RejectReason::BadAuth,
        });
        roundtrip(Frame::Rekey {
            stamp_unix_ns: 1_700_000_000_000_000_000,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::Ack {
            epoch: 17,
            lag_ns: 250_000,
        });
        roundtrip(Frame::Nack {
            epochs: vec![3, 4, 9],
        });
        roundtrip(Frame::Nack { epochs: vec![] });
        roundtrip(Frame::Gap {
            oldest: 5,
            requested: 2,
        });
        roundtrip(Frame::Bye);
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        assert!(matches!(decode(&[]), Err(NetError::Malformed { .. })));
        assert!(matches!(decode(&[99]), Err(NetError::UnknownFrame(99))));
        // Truncated at every prefix of a valid frame: never a panic.
        let wire = encode(&Frame::Hello {
            member: MemberId(3),
            tag: [1; 32],
        });
        for cut in 0..wire.len() {
            assert!(decode(&wire[..cut]).is_err());
        }
        // Trailing garbage rejected.
        let mut wire = encode(&Frame::Welcome { latest_epoch: 1 });
        wire.push(0);
        assert!(matches!(decode(&wire), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut wire = encode(&Frame::ServerHello { nonce: [0; 32] });
        wire[1] = PROTO_VERSION + 1;
        assert!(matches!(decode(&wire), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn oversized_nack_count_is_rejected_without_allocating() {
        let mut wire = vec![6u8]; // T_NACK
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(decode(&wire), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn hello_tag_binds_nonce_and_member() {
        let key = Key::from_bytes([3; 32]);
        let tag = hello_tag(&key, &[1; 32], MemberId(7));
        assert_ne!(tag, hello_tag(&key, &[2; 32], MemberId(7)));
        assert_ne!(tag, hello_tag(&key, &[1; 32], MemberId(8)));
        assert_ne!(
            tag,
            hello_tag(&Key::from_bytes([4; 32]), &[1; 32], MemberId(7))
        );
    }
}
