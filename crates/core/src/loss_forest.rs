//! The loss-homogenized key forest (§4).
//!
//! The key server maintains one key tree per loss class and places
//! each joining member into the tree matching its (reported or
//! estimated) packet-loss rate. Keys destined for low-loss receivers
//! then never share packets-worth of proactive replication with
//! high-loss receivers, cutting WKA-BKR bandwidth by up to 12.1% and
//! proactive-FEC bandwidth by up to 25.7% (§4.3–4.4).
//!
//! Members are *never* moved between trees after placement (§4.2:
//! the movement overhead would cancel the benefit); inaccurate
//! placement degrades gracefully (Fig. 7).
//!
//! [`LossEstimator`] implements the feedback loop of §4.2: members
//! piggyback their observed loss counts on NACKs, and the server uses
//! the estimate when the member next (re-)joins.

use crate::engine::{Placement, PlacementPolicy, RekeyEngine, Trees};
use crate::Join;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId};
use std::collections::BTreeMap;

const NS_DEK: u32 = 1;
const NS_TREE0: u32 = 16;

/// Validates loss-class boundaries: strictly increasing within (0, 1).
///
/// # Panics
///
/// Panics otherwise (shared by the forest and the combined scheme).
pub(crate) fn check_boundaries(boundaries: &[f64]) {
    let mut prev = 0.0;
    for &b in boundaries {
        assert!(
            b > prev && b < 1.0,
            "class boundaries must be strictly increasing in (0, 1)"
        );
        prev = b;
    }
}

/// Loss class for `loss_rate` given the class upper bounds (the last
/// class is unbounded).
pub(crate) fn class_of_loss(boundaries: &[f64], loss_rate: f64) -> usize {
    boundaries
        .iter()
        .position(|&b| loss_rate <= b)
        .unwrap_or(boundaries.len())
}

/// Placement for the forest: one tree per loss class, joiners routed
/// by their loss-rate hint, never moved afterwards.
#[derive(Debug, Clone)]
pub struct LossForestPolicy {
    /// Upper loss bound of each class; the last class is unbounded.
    boundaries: Vec<f64>,
}

impl PlacementPolicy for LossForestPolicy {
    fn scheme_name(&self) -> &'static str {
        "loss-homogenized-forest"
    }

    fn route_leave(&mut self, member: MemberId, trees: &Trees) -> Result<Placement, KeyTreeError> {
        trees
            .find(member)
            .map(Placement::Tree)
            .ok_or(KeyTreeError::UnknownMember(member))
    }

    fn route_join(&self, join: &Join, _trees: &Trees) -> Placement {
        // Members with no estimate go to the lowest class (first-time
        // joiners per §4.2).
        Placement::Tree(class_of_loss(
            &self.boundaries,
            join.hint.loss_rate.unwrap_or(0.0),
        ))
    }
}

/// A key forest partitioned by member loss rate.
pub type LossForestManager = RekeyEngine<LossForestPolicy>;

impl LossForestManager {
    /// Creates a forest with one tree per loss class. `boundaries` are
    /// the upper loss bounds of all classes but the last — e.g.
    /// `&[0.05]` builds the paper's two trees ("low" ≤ 5%, "high"
    /// > 5%).
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2` or `boundaries` is not strictly
    /// increasing within `[0, 1)`.
    pub fn new(degree: usize, boundaries: &[f64]) -> Self {
        check_boundaries(boundaries);
        let names: Vec<String> = (0..=boundaries.len()).map(|i| format!("loss{i}")).collect();
        let servers = (0..=boundaries.len()).map(|i| LkhServer::new(degree, NS_TREE0 + i as u32));
        RekeyEngine::with_trees(
            LossForestPolicy {
                boundaries: boundaries.to_vec(),
            },
            names.iter().map(String::as_str).zip(servers).collect(),
            Some(NS_DEK),
        )
    }

    /// The paper's default: two trees split at 5% loss.
    pub fn two_trees(degree: usize) -> Self {
        Self::new(degree, &[0.05])
    }

    /// Class index a member with the given loss rate belongs to.
    pub fn class_of(&self, loss_rate: f64) -> usize {
        class_of_loss(&self.policy().boundaries, loss_rate)
    }

    /// Number of loss classes (trees).
    pub fn class_count(&self) -> usize {
        self.tree_count()
    }

    /// Member count of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= class_count()`.
    pub fn class_size(&self, class: usize) -> usize {
        self.tree(class).member_count()
    }
}

/// Loss estimation from transport feedback (§4.2): members report the
/// number of packets they failed to receive, piggybacked on NACKs; the
/// server keeps a running estimate per member for use at (re-)join
/// time.
#[derive(Debug, Clone, Default)]
pub struct LossEstimator {
    observed: BTreeMap<MemberId, (u64, u64)>,
}

impl LossEstimator {
    /// An estimator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `(lost, seen)` packet counts for a member, e.g. from
    /// [`rekey_transport::wka_bkr::WkaBkrOutcome::lost_packets`].
    pub fn record(&mut self, member: MemberId, lost: u64, seen: u64) {
        let e = self.observed.entry(member).or_insert((0, 0));
        e.0 += lost;
        e.1 += seen;
    }

    /// Records a whole delivery's feedback.
    pub fn record_all<'a, I>(&mut self, feedback: I)
    where
        I: IntoIterator<Item = (&'a MemberId, &'a (u64, u64))>,
    {
        for (&m, &(lost, seen)) in feedback {
            self.record(m, lost, seen);
        }
    }

    /// The member's estimated loss rate, if at least `min_samples`
    /// packets were observed.
    pub fn estimate(&self, member: MemberId, min_samples: u64) -> Option<f64> {
        let &(lost, seen) = self.observed.get(&member)?;
        (seen >= min_samples).then(|| lost as f64 / seen as f64)
    }

    /// Serializes the accumulated observations onto `buf` (crash
    /// recovery of the combined scheme).
    pub fn save_into(&self, buf: &mut Vec<u8>) {
        use rekey_keytree::message::codec::{put_u32, put_u64};
        put_u32(buf, self.observed.len() as u32);
        for (&member, &(lost, seen)) in &self.observed {
            put_u64(buf, member.0);
            put_u64(buf, lost);
            put_u64(buf, seen);
        }
    }

    /// Decodes an estimator serialized by [`LossEstimator::save_into`],
    /// advancing `buf` past it. Returns `None` on truncation.
    pub fn load_from(buf: &mut &[u8]) -> Option<LossEstimator> {
        use rekey_keytree::message::codec::{get_u32, get_u64};
        let count = get_u32(buf)?;
        let mut observed = BTreeMap::new();
        for _ in 0..count {
            let member = MemberId(get_u64(buf)?);
            let lost = get_u64(buf)?;
            let seen = get_u64(buf)?;
            observed.insert(member, (lost, seen));
        }
        Some(LossEstimator { observed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupKeyManager;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;

    #[test]
    fn placement_by_loss_hint() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mgr = LossForestManager::two_trees(4);
        let joins = vec![
            Join::new(MemberId(1), Key::generate(&mut rng)).with_loss_rate(0.02),
            Join::new(MemberId(2), Key::generate(&mut rng)).with_loss_rate(0.2),
            Join::new(MemberId(3), Key::generate(&mut rng)), // no estimate → low
        ];
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        assert_eq!(mgr.class_size(0), 2);
        assert_eq!(mgr.class_size(1), 1);
    }

    #[test]
    fn class_of_boundaries() {
        let mgr = LossForestManager::new(4, &[0.05, 0.15]);
        assert_eq!(mgr.class_of(0.0), 0);
        assert_eq!(mgr.class_of(0.05), 0);
        assert_eq!(mgr.class_of(0.1), 1);
        assert_eq!(mgr.class_of(0.9), 2);
        assert_eq!(mgr.class_count(), 3);
    }

    #[test]
    fn unknown_leaver_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mgr = LossForestManager::two_trees(4);
        assert!(matches!(
            mgr.process_interval(&[], &[MemberId(9)], &mut rng),
            Err(KeyTreeError::UnknownMember(_))
        ));
    }

    #[test]
    fn estimator_needs_samples() {
        let mut est = LossEstimator::new();
        est.record(MemberId(1), 3, 10);
        assert_eq!(est.estimate(MemberId(1), 20), None);
        est.record(MemberId(1), 3, 10);
        assert_eq!(est.estimate(MemberId(1), 20), Some(0.3));
        assert_eq!(est.estimate(MemberId(2), 1), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_boundaries_rejected() {
        LossForestManager::new(4, &[0.2, 0.1]);
    }
}
