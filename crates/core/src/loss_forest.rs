//! The loss-homogenized key forest (§4).
//!
//! The key server maintains one key tree per loss class and places
//! each joining member into the tree matching its (reported or
//! estimated) packet-loss rate. Keys destined for low-loss receivers
//! then never share packets-worth of proactive replication with
//! high-loss receivers, cutting WKA-BKR bandwidth by up to 12.1% and
//! proactive-FEC bandwidth by up to 25.7% (§4.3–4.4).
//!
//! Members are *never* moved between trees after placement (§4.2:
//! the movement overhead would cancel the benefit); inaccurate
//! placement degrades gracefully (Fig. 7).
//!
//! [`LossEstimator`] implements the feedback loop of §4.2: members
//! piggyback their observed loss counts on NACKs, and the server uses
//! the estimate when the member next (re-)joins.

use crate::dek::DekState;
use crate::{GroupKeyManager, IntervalOutcome, IntervalStats, Join};
use rand::RngCore;
use rekey_crypto::Key;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};
use std::collections::BTreeMap;

const NS_DEK: u32 = 1;
const NS_TREE0: u32 = 16;

/// A key forest partitioned by member loss rate.
#[derive(Debug, Clone)]
pub struct LossForestManager {
    dek: DekState,
    /// Upper loss bound of each class; the last class is unbounded.
    boundaries: Vec<f64>,
    trees: Vec<LkhServer>,
    epoch: u64,
}

impl LossForestManager {
    /// Creates a forest with one tree per loss class. `boundaries` are
    /// the upper loss bounds of all classes but the last — e.g.
    /// `&[0.05]` builds the paper's two trees ("low" ≤ 5%, "high"
    /// > 5%).
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2` or `boundaries` is not strictly
    /// increasing within `[0, 1)`.
    pub fn new(degree: usize, boundaries: &[f64]) -> Self {
        let mut prev = 0.0;
        for &b in boundaries {
            assert!(
                b > prev && b < 1.0,
                "class boundaries must be strictly increasing in (0, 1)"
            );
            prev = b;
        }
        let trees = (0..=boundaries.len())
            .map(|i| LkhServer::new(degree, NS_TREE0 + i as u32))
            .collect();
        LossForestManager {
            dek: DekState::new(NS_DEK),
            boundaries: boundaries.to_vec(),
            trees,
            epoch: 0,
        }
    }

    /// The paper's default: two trees split at 5% loss.
    pub fn two_trees(degree: usize) -> Self {
        Self::new(degree, &[0.05])
    }

    /// Class index a member with the given loss rate belongs to.
    pub fn class_of(&self, loss_rate: f64) -> usize {
        self.boundaries
            .iter()
            .position(|&b| loss_rate <= b)
            .unwrap_or(self.boundaries.len())
    }

    /// Number of loss classes (trees).
    pub fn class_count(&self) -> usize {
        self.trees.len()
    }

    /// Member count of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= class_count()`.
    pub fn class_size(&self, class: usize) -> usize {
        self.trees[class].member_count()
    }
}

impl GroupKeyManager for LossForestManager {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        mut rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        self.epoch += 1;

        // Route departures to the trees holding them.
        let mut tree_leaves: Vec<Vec<MemberId>> = vec![Vec::new(); self.trees.len()];
        'leaves: for &m in leaves {
            for (i, tree) in self.trees.iter().enumerate() {
                if tree.contains(m) {
                    tree_leaves[i].push(m);
                    continue 'leaves;
                }
            }
            return Err(KeyTreeError::UnknownMember(m));
        }

        // Route joins by loss-rate hint; members with no estimate go
        // to the lowest class (first-time joiners per §4.2).
        let mut tree_joins: Vec<Vec<(MemberId, Key)>> = vec![Vec::new(); self.trees.len()];
        for j in joins {
            let class = self.class_of(j.hint.loss_rate.unwrap_or(0.0));
            tree_joins[class].push((j.member, j.individual_key.clone()));
        }

        let mut message = RekeyMessage::new(self.epoch);
        for (i, tree) in self.trees.iter_mut().enumerate() {
            let out = tree.try_apply_batch(&tree_joins[i], &tree_leaves[i], &mut rng)?;
            message.merge(out.message);
        }

        self.dek.refresh(rng);
        for tree in &self.trees {
            if tree.member_count() > 0 {
                message.entries.push(self.dek.wrap_under(
                    tree.root_node(),
                    tree.root_version(),
                    tree.root_key(),
                    false,
                    None,
                    tree.member_count() as u32,
                    rng,
                ));
            }
        }

        Ok(IntervalOutcome {
            stats: IntervalStats {
                joins: joins.len(),
                leaves: leaves.len(),
                migrations: 0,
                encrypted_keys: message.encrypted_key_count(),
                message_bytes: message.byte_len(),
            },
            message,
        })
    }

    fn set_parallelism(&mut self, workers: usize) {
        for tree in &mut self.trees {
            tree.set_parallelism(workers);
        }
    }

    fn dek_node(&self) -> NodeId {
        self.dek.node
    }

    fn dek(&self) -> &Key {
        &self.dek.key
    }

    fn member_count(&self) -> usize {
        self.trees.iter().map(LkhServer::member_count).sum()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.trees.iter().any(|t| t.contains(member))
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        if node == self.dek.node {
            return self
                .trees
                .iter()
                .flat_map(|t| t.members_under(t.root_node()))
                .collect();
        }
        for tree in &self.trees {
            if node.namespace() == tree.tree().namespace() {
                return tree.members_under(node);
            }
        }
        Vec::new()
    }

    fn scheme_name(&self) -> &'static str {
        "loss-homogenized-forest"
    }
}

/// Loss estimation from transport feedback (§4.2): members report the
/// number of packets they failed to receive, piggybacked on NACKs; the
/// server keeps a running estimate per member for use at (re-)join
/// time.
#[derive(Debug, Clone, Default)]
pub struct LossEstimator {
    observed: BTreeMap<MemberId, (u64, u64)>,
}

impl LossEstimator {
    /// An estimator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `(lost, seen)` packet counts for a member, e.g. from
    /// [`rekey_transport::wka_bkr::WkaBkrOutcome::lost_packets`].
    pub fn record(&mut self, member: MemberId, lost: u64, seen: u64) {
        let e = self.observed.entry(member).or_insert((0, 0));
        e.0 += lost;
        e.1 += seen;
    }

    /// Records a whole delivery's feedback.
    pub fn record_all<'a, I>(&mut self, feedback: I)
    where
        I: IntoIterator<Item = (&'a MemberId, &'a (u64, u64))>,
    {
        for (&m, &(lost, seen)) in feedback {
            self.record(m, lost, seen);
        }
    }

    /// The member's estimated loss rate, if at least `min_samples`
    /// packets were observed.
    pub fn estimate(&self, member: MemberId, min_samples: u64) -> Option<f64> {
        let &(lost, seen) = self.observed.get(&member)?;
        (seen >= min_samples).then(|| lost as f64 / seen as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_keytree::member::GroupMember;

    #[test]
    fn placement_by_loss_hint() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mgr = LossForestManager::two_trees(4);
        let joins = vec![
            Join::new(MemberId(1), Key::generate(&mut rng)).with_loss_rate(0.02),
            Join::new(MemberId(2), Key::generate(&mut rng)).with_loss_rate(0.2),
            Join::new(MemberId(3), Key::generate(&mut rng)), // no estimate → low
        ];
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        assert_eq!(mgr.class_size(0), 2);
        assert_eq!(mgr.class_size(1), 1);
    }

    #[test]
    fn class_of_boundaries() {
        let mgr = LossForestManager::new(4, &[0.05, 0.15]);
        assert_eq!(mgr.class_of(0.0), 0);
        assert_eq!(mgr.class_of(0.05), 0);
        assert_eq!(mgr.class_of(0.1), 1);
        assert_eq!(mgr.class_of(0.9), 2);
        assert_eq!(mgr.class_count(), 3);
    }

    #[test]
    fn forest_end_to_end_secrecy() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mgr = LossForestManager::two_trees(3);
        let mut states: BTreeMap<MemberId, GroupMember> = BTreeMap::new();

        let joins: Vec<Join> = (0..20u64)
            .map(|i| {
                let ik = Key::generate(&mut rng);
                states.insert(MemberId(i), GroupMember::new(MemberId(i), ik.clone()));
                let loss = if i % 3 == 0 { 0.2 } else { 0.02 };
                Join::new(MemberId(i), ik).with_loss_rate(loss)
            })
            .collect();
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        for s in states.values_mut() {
            s.process(&out.message).unwrap();
        }

        // Evict one member of each class.
        let leavers = [MemberId(0), MemberId(1)];
        let out = mgr.process_interval(&[], &leavers, &mut rng).unwrap();
        for s in states.values_mut() {
            let _ = s.process(&out.message);
        }
        for (id, s) in &states {
            if leavers.contains(id) {
                assert_ne!(s.key_for(mgr.dek_node()), Some(mgr.dek()), "{id} kept DEK");
            } else {
                assert_eq!(s.key_for(mgr.dek_node()), Some(mgr.dek()), "{id} lost DEK");
            }
        }
    }

    #[test]
    fn unknown_leaver_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mgr = LossForestManager::two_trees(4);
        assert!(matches!(
            mgr.process_interval(&[], &[MemberId(9)], &mut rng),
            Err(KeyTreeError::UnknownMember(_))
        ));
    }

    #[test]
    fn estimator_needs_samples() {
        let mut est = LossEstimator::new();
        est.record(MemberId(1), 3, 10);
        assert_eq!(est.estimate(MemberId(1), 20), None);
        est.record(MemberId(1), 3, 10);
        assert_eq!(est.estimate(MemberId(1), 20), Some(0.3));
        assert_eq!(est.estimate(MemberId(2), 1), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_boundaries_rejected() {
        LossForestManager::new(4, &[0.2, 0.1]);
    }
}
