//! Adaptive scheme selection (§3.4).
//!
//! "At the beginning of a session, the key server just maintains one
//! key tree; later, from its collected trace data it can compute the
//! group statistics such as Ms, Ml, and α. Then using our analytic
//! model, the key server can choose the best scheme to use. And this
//! process can be repeated periodically."
//!
//! [`TraceCollector`] accumulates observed membership durations,
//! [`TraceCollector::estimate`] fits the two-class exponential mixture
//! with a 1-D two-means split on log-durations (exponential-MLE means
//! per cluster), and [`recommend`] evaluates
//! [`rekey_analytic::partition`] over a grid of S-periods to pick the
//! cheapest scheme.

use crate::one_tree::OneTreeManager;
use crate::partition::{QtManager, TtManager};
use crate::{GroupKeyManager, IntervalOutcome, Join, JoinHint};
use rand::RngCore;
use rekey_analytic::partition::PartitionParams;
use rekey_crypto::Key;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};
use std::collections::{BTreeMap, HashMap};

/// Fitted two-class exponential mixture (the model of §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureEstimate {
    /// Estimated short-class mean duration `M̂s` (seconds).
    pub mean_short: f64,
    /// Estimated long-class mean duration `M̂l` (seconds).
    pub mean_long: f64,
    /// Estimated fraction of short-lived joins `α̂`.
    pub alpha: f64,
    /// Completed durations the estimate is based on.
    pub samples: usize,
}

/// Collects join/leave timestamps and fits the duration mixture.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    active: HashMap<MemberId, f64>,
    durations: Vec<f64>,
    capacity: usize,
}

impl TraceCollector {
    /// A collector retaining up to `capacity` completed durations
    /// (older samples are evicted FIFO so the estimate tracks the
    /// session).
    pub fn new(capacity: usize) -> Self {
        TraceCollector {
            active: HashMap::new(),
            durations: Vec::new(),
            capacity: capacity.max(4),
        }
    }

    /// Records a join at time `t` (seconds).
    pub fn record_join(&mut self, member: MemberId, t: f64) {
        self.active.insert(member, t);
    }

    /// Records a departure at time `t`; ignored if the join was never
    /// seen.
    pub fn record_leave(&mut self, member: MemberId, t: f64) {
        if let Some(joined) = self.active.remove(&member) {
            let d = (t - joined).max(1e-6);
            if self.durations.len() == self.capacity {
                self.durations.remove(0);
            }
            self.durations.push(d);
        }
    }

    /// Completed-duration sample count.
    pub fn sample_count(&self) -> usize {
        self.durations.len()
    }

    /// Fits the two-class mixture. Returns `None` with fewer than 8
    /// samples or when the durations show no bimodality (ratio of
    /// cluster means below 2), in which case a single class describes
    /// the group and the one-keytree scheme is appropriate.
    pub fn estimate(&self) -> Option<MixtureEstimate> {
        if self.durations.len() < 8 {
            return None;
        }
        let logs: Vec<f64> = self.durations.iter().map(|d| d.ln()).collect();
        let (min, max) = logs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        if max - min < 1e-9 {
            return None;
        }
        // Two-means in 1-D on log-durations.
        let mut c0 = min;
        let mut c1 = max;
        for _ in 0..32 {
            let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0usize, 0.0, 0usize);
            for &x in &logs {
                if (x - c0).abs() <= (x - c1).abs() {
                    s0 += x;
                    n0 += 1;
                } else {
                    s1 += x;
                    n1 += 1;
                }
            }
            if n0 == 0 || n1 == 0 {
                return None;
            }
            let (new0, new1) = (s0 / n0 as f64, s1 / n1 as f64);
            if (new0 - c0).abs() + (new1 - c1).abs() < 1e-12 {
                break;
            }
            c0 = new0;
            c1 = new1;
        }
        let threshold = (c0 + c1) / 2.0;
        let (mut short, mut long): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
        for (&d, &x) in self.durations.iter().zip(&logs) {
            if x <= threshold {
                short.push(d);
            } else {
                long.push(d);
            }
        }
        if short.is_empty() || long.is_empty() {
            return None;
        }
        let mean_short = short.iter().sum::<f64>() / short.len() as f64;
        let mean_long = long.iter().sum::<f64>() / long.len() as f64;
        if mean_long / mean_short < 2.0 {
            return None;
        }
        Some(MixtureEstimate {
            mean_short,
            mean_long,
            alpha: short.len() as f64 / self.durations.len() as f64,
            samples: self.durations.len(),
        })
    }
}

/// The scheme a server should run, per the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeChoice {
    /// Stay with the unoptimized single tree.
    OneKeytree,
    /// TT-scheme with the given S-period (in rekey intervals).
    Tt {
        /// `K = Ts / Tp`.
        k: u32,
    },
    /// QT-scheme with the given S-period (in rekey intervals).
    Qt {
        /// `K = Ts / Tp`.
        k: u32,
    },
}

/// A recommendation with its predicted per-interval cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The chosen scheme.
    pub scheme: SchemeChoice,
    /// Predicted encrypted keys per rekey interval.
    pub predicted_cost: f64,
    /// Predicted cost of staying with one keytree.
    pub one_keytree_cost: f64,
}

/// Evaluates the §3.3.1 model over `k = 1..=max_k` for both
/// constructions and picks the cheapest scheme (falling back to the
/// one-keytree scheme when partitioning does not pay off, or when no
/// mixture estimate is available).
pub fn recommend(
    group_size: u64,
    degree: u32,
    rekey_period: f64,
    estimate: Option<MixtureEstimate>,
    max_k: u32,
) -> Recommendation {
    let base = PartitionParams {
        group_size,
        degree,
        rekey_period,
        k: 0,
        mean_short: 1.0,
        mean_long: 1.0,
        alpha: 0.0,
    };
    let Some(est) = estimate else {
        // No estimate: stay with one tree. Use a degenerate mixture to
        // compute the baseline cost.
        let p = PartitionParams {
            mean_short: rekey_period * 10.0,
            mean_long: rekey_period * 10.0,
            alpha: 0.0,
            ..base
        };
        let cost = p.cost_one_keytree();
        return Recommendation {
            scheme: SchemeChoice::OneKeytree,
            predicted_cost: cost,
            one_keytree_cost: cost,
        };
    };

    let with_k = |k: u32| PartitionParams {
        k,
        mean_short: est.mean_short,
        mean_long: est.mean_long,
        alpha: est.alpha,
        ..base
    };
    let one_cost = with_k(0).cost_one_keytree();
    let mut best = Recommendation {
        scheme: SchemeChoice::OneKeytree,
        predicted_cost: one_cost,
        one_keytree_cost: one_cost,
    };
    for k in 1..=max_k {
        let p = with_k(k);
        let tt = p.cost_tt();
        if tt < best.predicted_cost {
            best.scheme = SchemeChoice::Tt { k };
            best.predicted_cost = tt;
        }
        let qt = p.cost_qt();
        if qt < best.predicted_cost {
            best.scheme = SchemeChoice::Qt { k };
            best.predicted_cost = qt;
        }
    }
    best
}

// ---------------------------------------------------------------------
// The adaptive manager: §3.4 as a running scheme
// ---------------------------------------------------------------------

/// Namespace base of the first adaptive generation; each rebuild
/// advances by [`NS_GEN_STRIDE`] so node ids never collide with keys
/// receivers learned under an earlier generation. The base sits far
/// above the namespaces any concrete scheme uses on its own.
const NS_GEN_BASE: u32 = 64;

/// Namespaces consumed per generation (DEK + up to two partitions,
/// rounded up for headroom).
const NS_GEN_STRIDE: u32 = 4;

/// The deployment loop of §3.4 as a [`GroupKeyManager`]: start with
/// one key tree, collect the membership-duration trace, periodically
/// re-fit the mixture and re-evaluate the analytic model, and switch
/// to the recommended scheme when it changes.
///
/// A switch rebuilds the inner manager in a fresh node-id namespace
/// and re-admits every present member in that interval's batch, so
/// the rekey message carries one individually-addressed entry per
/// member — receivers cross generations with no extra protocol:
/// re-join entries are wrapped under individual keys exactly like
/// first-time joins. Reported [`crate::IntervalStats`] keep the
/// *caller's* join/leave counts; re-admissions surface as migrations.
///
/// [`GroupKeyManager::dek_node`] is stable *between* switches only.
pub struct AdaptiveManager {
    inner: Box<dyn GroupKeyManager>,
    choice: SchemeChoice,
    degree: usize,
    rekey_period: f64,
    reassess_every: u64,
    max_k: u32,
    collector: TraceCollector,
    registry: BTreeMap<MemberId, (Key, JoinHint)>,
    intervals: u64,
    generation: u32,
    parallelism: usize,
}

impl AdaptiveManager {
    /// Creates an adaptive manager with tree degree `degree` that
    /// re-evaluates the model every `reassess_every` intervals of
    /// `rekey_period` seconds, considering S-periods up to `max_k`.
    /// The session starts on the one-keytree scheme, as the paper
    /// prescribes.
    pub fn new(degree: usize, rekey_period: f64, reassess_every: u64, max_k: u32) -> Self {
        AdaptiveManager {
            inner: Box::new(OneTreeManager::with_namespace(degree, NS_GEN_BASE)),
            choice: SchemeChoice::OneKeytree,
            degree,
            rekey_period,
            reassess_every: reassess_every.max(1),
            max_k,
            collector: TraceCollector::new(4096),
            registry: BTreeMap::new(),
            intervals: 0,
            generation: 0,
            parallelism: 1,
        }
    }

    /// Paper-default parameters: 60 s rekey interval, reassessment
    /// every 8 intervals, S-periods up to `K = 20`.
    pub fn paper_default(degree: usize) -> Self {
        Self::new(degree, 60.0, 8, 20)
    }

    /// The scheme currently running underneath.
    pub fn current_choice(&self) -> SchemeChoice {
        self.choice
    }

    /// Number of scheme switches performed so far.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Builds a fresh manager for `choice` in the next generation's
    /// namespace block.
    fn build(&self, choice: SchemeChoice, generation: u32) -> Box<dyn GroupKeyManager> {
        let base = NS_GEN_BASE + generation * NS_GEN_STRIDE;
        let mut mgr: Box<dyn GroupKeyManager> = match choice {
            SchemeChoice::OneKeytree => Box::new(OneTreeManager::with_namespace(self.degree, base)),
            SchemeChoice::Tt { k } => {
                Box::new(TtManager::with_namespace_base(self.degree, k as u64, base))
            }
            SchemeChoice::Qt { k } => {
                Box::new(QtManager::with_namespace_base(self.degree, k as u64, base))
            }
        };
        mgr.set_parallelism(self.parallelism);
        mgr
    }
}

impl GroupKeyManager for AdaptiveManager {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        // Validate against the registry up front so the batch is
        // rejected before any state (inner, collector, registry)
        // mutates — the same all-or-nothing contract the engine gives.
        for &m in leaves {
            if !self.registry.contains_key(&m) {
                return Err(KeyTreeError::UnknownMember(m));
            }
        }
        for j in joins {
            if self.registry.contains_key(&j.member) {
                return Err(KeyTreeError::DuplicateMember(j.member));
            }
        }

        // Periodic reassessment (§3.4): re-fit the mixture, re-run the
        // model, switch when the recommendation changes.
        let switch = if self.intervals > 0 && self.intervals.is_multiple_of(self.reassess_every) {
            let rec = recommend(
                self.registry.len() as u64,
                self.degree as u32,
                self.rekey_period,
                self.collector.estimate(),
                self.max_k,
            );
            (rec.scheme != self.choice).then_some(rec.scheme)
        } else {
            None
        };

        let mut outcome = if let Some(choice) = switch {
            // Rebuild: every surviving member re-joins the fresh
            // manager (individually-keyed entries), this interval's
            // joiners ride in the same batch, leavers simply never
            // enter the new generation.
            let generation = self.generation + 1;
            let mut fresh = self.build(choice, generation);
            let mut batch: Vec<Join> = self
                .registry
                .iter()
                .filter(|(m, _)| !leaves.contains(m))
                .map(|(&m, (key, hint))| Join {
                    member: m,
                    individual_key: key.clone(),
                    hint: hint.clone(),
                })
                .collect();
            let migrations = batch.len();
            batch.extend(joins.iter().cloned());
            let mut outcome = fresh.process_interval(&batch, &[], rng)?;
            self.inner = fresh;
            self.choice = choice;
            self.generation = generation;
            outcome.stats.migrations = migrations;
            outcome
        } else {
            self.inner.process_interval(joins, leaves, rng)?
        };
        outcome.stats.joins = joins.len();
        outcome.stats.leaves = leaves.len();

        // Bookkeeping after the interval succeeded.
        let t = self.intervals as f64 * self.rekey_period;
        for &m in leaves {
            self.registry.remove(&m);
            self.collector.record_leave(m, t);
        }
        for j in joins {
            self.registry
                .insert(j.member, (j.individual_key.clone(), j.hint.clone()));
            self.collector.record_join(j.member, t);
        }
        self.intervals += 1;
        Ok(outcome)
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers;
        self.inner.set_parallelism(workers);
    }

    fn dek_node(&self) -> NodeId {
        self.inner.dek_node()
    }

    fn dek(&self) -> &Key {
        self.inner.dek()
    }

    fn member_count(&self) -> usize {
        self.inner.member_count()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.inner.contains(member)
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        self.inner.members_under(node)
    }

    fn members_under_into(&self, node: NodeId, out: &mut Vec<MemberId>) {
        self.inner.members_under_into(node, out);
    }

    fn scheme_name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
        -mean * (1.0 - rng.gen::<f64>()).ln()
    }

    fn collect_mixture(alpha: f64, ms: f64, ml: f64, n: usize, seed: u64) -> TraceCollector {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tc = TraceCollector::new(n);
        for i in 0..n as u64 {
            let mean = if rng.gen::<f64>() < alpha { ms } else { ml };
            let d = exponential(&mut rng, mean);
            tc.record_join(MemberId(i), 0.0);
            tc.record_leave(MemberId(i), d);
        }
        tc
    }

    #[test]
    fn estimates_recover_mixture() {
        let tc = collect_mixture(0.8, 180.0, 10_800.0, 4000, 1);
        let est = tc.estimate().expect("estimate available");
        assert!(
            (est.alpha - 0.8).abs() < 0.1,
            "alpha estimate {} off",
            est.alpha
        );
        assert!(
            est.mean_short < 600.0,
            "short mean {} too large",
            est.mean_short
        );
        assert!(
            est.mean_long > 4000.0,
            "long mean {} too small",
            est.mean_long
        );
    }

    #[test]
    fn homogeneous_group_yields_no_mixture() {
        let tc = collect_mixture(0.0, 180.0, 10_800.0, 1000, 2);
        // All durations from one exponential: cluster means stay
        // within a factor ~2 or a cluster degenerates.
        // (Exponential spread can occasionally split; accept either
        //  None or a weak mixture close to one class.)
        if let Some(est) = tc.estimate() {
            assert!(
                est.alpha < 0.95,
                "degenerate split claimed alpha {}",
                est.alpha
            );
        }
    }

    #[test]
    fn too_few_samples_yields_none() {
        let tc = collect_mixture(0.8, 180.0, 10_800.0, 5, 3);
        assert!(tc.estimate().is_none());
    }

    #[test]
    fn recommends_partitioning_for_dynamic_groups() {
        let est = MixtureEstimate {
            mean_short: 180.0,
            mean_long: 10_800.0,
            alpha: 0.8,
            samples: 1000,
        };
        let rec = recommend(65536, 4, 60.0, Some(est), 20);
        assert!(matches!(
            rec.scheme,
            SchemeChoice::Tt { .. } | SchemeChoice::Qt { .. }
        ));
        assert!(rec.predicted_cost < rec.one_keytree_cost * 0.85);
    }

    #[test]
    fn recommends_one_tree_for_stable_groups() {
        let est = MixtureEstimate {
            mean_short: 180.0,
            mean_long: 10_800.0,
            alpha: 0.1,
            samples: 1000,
        };
        let rec = recommend(65536, 4, 60.0, Some(est), 20);
        assert_eq!(rec.scheme, SchemeChoice::OneKeytree);
    }

    #[test]
    fn no_estimate_keeps_one_tree() {
        let rec = recommend(1024, 4, 60.0, None, 20);
        assert_eq!(rec.scheme, SchemeChoice::OneKeytree);
        assert_eq!(rec.predicted_cost, rec.one_keytree_cost);
    }

    #[test]
    fn collector_evicts_old_samples() {
        let mut tc = TraceCollector::new(8);
        for i in 0..20u64 {
            tc.record_join(MemberId(i), 0.0);
            tc.record_leave(MemberId(i), 1.0 + i as f64);
        }
        assert_eq!(tc.sample_count(), 8);
    }

    use rekey_keytree::member::GroupMember;
    use std::collections::BTreeMap as Map;

    /// Drives an [`AdaptiveManager`] with full receiver states across
    /// a scheme switch: members must stay DEK-synchronized through the
    /// rebuild, and reported stats must keep the caller's counts.
    #[test]
    fn switch_preserves_member_sync() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut mgr = AdaptiveManager::new(4, 60.0, 1, 20);
        // Pretend a long, clearly bimodal duration trace was already
        // observed, so the first reassessment recommends partitioning.
        for i in 0..1000u64 {
            let m = MemberId(1_000_000 + i);
            mgr.collector.record_join(m, 0.0);
            let d = if i.is_multiple_of(5) { 10_800.0 } else { 180.0 };
            mgr.collector.record_leave(m, d);
        }
        assert!(mgr.collector.estimate().is_some(), "trace must be bimodal");

        let mut states: Map<MemberId, GroupMember> = Map::new();
        let joins: Vec<Join> = (0..300u64)
            .map(|i| {
                let ik = Key::generate(&mut rng);
                states.insert(MemberId(i), GroupMember::new(MemberId(i), ik.clone()));
                Join::new(MemberId(i), ik)
            })
            .collect();
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        for s in states.values_mut() {
            let _ = s.process(&out.message);
        }

        let mut next_id = 300u64;
        let mut departed: Vec<MemberId> = Vec::new();
        for step in 0..4 {
            let joins: Vec<Join> = (0..3)
                .map(|_| {
                    let m = MemberId(next_id);
                    next_id += 1;
                    let ik = Key::generate(&mut rng);
                    states.insert(m, GroupMember::new(m, ik.clone()));
                    Join::new(m, ik)
                })
                .collect();
            let leaves = vec![MemberId(step * 7), MemberId(step * 7 + 1)];
            let out = mgr.process_interval(&joins, &leaves, &mut rng).unwrap();
            assert_eq!(out.stats.joins, 3);
            assert_eq!(out.stats.leaves, 2);
            departed.extend(&leaves);
            for s in states.values_mut() {
                let _ = s.process(&out.message);
            }
            for (id, s) in &states {
                if departed.contains(id) {
                    assert_ne!(
                        s.key_for(mgr.dek_node()),
                        Some(mgr.dek()),
                        "departed {id} holds the DEK after step {step}"
                    );
                } else {
                    assert_eq!(
                        s.key_for(mgr.dek_node()),
                        Some(mgr.dek()),
                        "member {id} lost the DEK after step {step}"
                    );
                }
            }
        }
        assert!(
            mgr.generation() >= 1,
            "bimodal trace never triggered a switch (still {:?})",
            mgr.current_choice()
        );
        assert_ne!(mgr.current_choice(), SchemeChoice::OneKeytree);
    }

    #[test]
    fn adaptive_rejects_inconsistent_batches() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mgr = AdaptiveManager::paper_default(4);
        let err = mgr
            .process_interval(&[], &[MemberId(9)], &mut rng)
            .unwrap_err();
        assert_eq!(err, KeyTreeError::UnknownMember(MemberId(9)));

        let ik = Key::generate(&mut rng);
        mgr.process_interval(&[Join::new(MemberId(1), ik.clone())], &[], &mut rng)
            .unwrap();
        let err = mgr
            .process_interval(&[Join::new(MemberId(1), ik)], &[], &mut rng)
            .unwrap_err();
        assert_eq!(err, KeyTreeError::DuplicateMember(MemberId(1)));
        // The failed batches left no trace: the member is still there.
        assert!(mgr.contains(MemberId(1)));
        assert_eq!(mgr.member_count(), 1);
    }
}
