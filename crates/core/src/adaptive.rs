//! Adaptive scheme selection (§3.4).
//!
//! "At the beginning of a session, the key server just maintains one
//! key tree; later, from its collected trace data it can compute the
//! group statistics such as Ms, Ml, and α. Then using our analytic
//! model, the key server can choose the best scheme to use. And this
//! process can be repeated periodically."
//!
//! [`TraceCollector`] accumulates observed membership durations,
//! [`TraceCollector::estimate`] fits the two-class exponential mixture
//! with a 1-D two-means split on log-durations (exponential-MLE means
//! per cluster), and [`recommend`] evaluates
//! [`rekey_analytic::partition`] over a grid of S-periods to pick the
//! cheapest scheme.

use rekey_analytic::partition::PartitionParams;
use rekey_keytree::MemberId;
use std::collections::HashMap;

/// Fitted two-class exponential mixture (the model of §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureEstimate {
    /// Estimated short-class mean duration `M̂s` (seconds).
    pub mean_short: f64,
    /// Estimated long-class mean duration `M̂l` (seconds).
    pub mean_long: f64,
    /// Estimated fraction of short-lived joins `α̂`.
    pub alpha: f64,
    /// Completed durations the estimate is based on.
    pub samples: usize,
}

/// Collects join/leave timestamps and fits the duration mixture.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    active: HashMap<MemberId, f64>,
    durations: Vec<f64>,
    capacity: usize,
}

impl TraceCollector {
    /// A collector retaining up to `capacity` completed durations
    /// (older samples are evicted FIFO so the estimate tracks the
    /// session).
    pub fn new(capacity: usize) -> Self {
        TraceCollector {
            active: HashMap::new(),
            durations: Vec::new(),
            capacity: capacity.max(4),
        }
    }

    /// Records a join at time `t` (seconds).
    pub fn record_join(&mut self, member: MemberId, t: f64) {
        self.active.insert(member, t);
    }

    /// Records a departure at time `t`; ignored if the join was never
    /// seen.
    pub fn record_leave(&mut self, member: MemberId, t: f64) {
        if let Some(joined) = self.active.remove(&member) {
            let d = (t - joined).max(1e-6);
            if self.durations.len() == self.capacity {
                self.durations.remove(0);
            }
            self.durations.push(d);
        }
    }

    /// Completed-duration sample count.
    pub fn sample_count(&self) -> usize {
        self.durations.len()
    }

    /// Fits the two-class mixture. Returns `None` with fewer than 8
    /// samples or when the durations show no bimodality (ratio of
    /// cluster means below 2), in which case a single class describes
    /// the group and the one-keytree scheme is appropriate.
    pub fn estimate(&self) -> Option<MixtureEstimate> {
        if self.durations.len() < 8 {
            return None;
        }
        let logs: Vec<f64> = self.durations.iter().map(|d| d.ln()).collect();
        let (min, max) = logs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        if max - min < 1e-9 {
            return None;
        }
        // Two-means in 1-D on log-durations.
        let mut c0 = min;
        let mut c1 = max;
        for _ in 0..32 {
            let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0usize, 0.0, 0usize);
            for &x in &logs {
                if (x - c0).abs() <= (x - c1).abs() {
                    s0 += x;
                    n0 += 1;
                } else {
                    s1 += x;
                    n1 += 1;
                }
            }
            if n0 == 0 || n1 == 0 {
                return None;
            }
            let (new0, new1) = (s0 / n0 as f64, s1 / n1 as f64);
            if (new0 - c0).abs() + (new1 - c1).abs() < 1e-12 {
                break;
            }
            c0 = new0;
            c1 = new1;
        }
        let threshold = (c0 + c1) / 2.0;
        let (mut short, mut long): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
        for (&d, &x) in self.durations.iter().zip(&logs) {
            if x <= threshold {
                short.push(d);
            } else {
                long.push(d);
            }
        }
        if short.is_empty() || long.is_empty() {
            return None;
        }
        let mean_short = short.iter().sum::<f64>() / short.len() as f64;
        let mean_long = long.iter().sum::<f64>() / long.len() as f64;
        if mean_long / mean_short < 2.0 {
            return None;
        }
        Some(MixtureEstimate {
            mean_short,
            mean_long,
            alpha: short.len() as f64 / self.durations.len() as f64,
            samples: self.durations.len(),
        })
    }
}

/// The scheme a server should run, per the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeChoice {
    /// Stay with the unoptimized single tree.
    OneKeytree,
    /// TT-scheme with the given S-period (in rekey intervals).
    Tt {
        /// `K = Ts / Tp`.
        k: u32,
    },
    /// QT-scheme with the given S-period (in rekey intervals).
    Qt {
        /// `K = Ts / Tp`.
        k: u32,
    },
}

/// A recommendation with its predicted per-interval cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The chosen scheme.
    pub scheme: SchemeChoice,
    /// Predicted encrypted keys per rekey interval.
    pub predicted_cost: f64,
    /// Predicted cost of staying with one keytree.
    pub one_keytree_cost: f64,
}

/// Evaluates the §3.3.1 model over `k = 1..=max_k` for both
/// constructions and picks the cheapest scheme (falling back to the
/// one-keytree scheme when partitioning does not pay off, or when no
/// mixture estimate is available).
pub fn recommend(
    group_size: u64,
    degree: u32,
    rekey_period: f64,
    estimate: Option<MixtureEstimate>,
    max_k: u32,
) -> Recommendation {
    let base = PartitionParams {
        group_size,
        degree,
        rekey_period,
        k: 0,
        mean_short: 1.0,
        mean_long: 1.0,
        alpha: 0.0,
    };
    let Some(est) = estimate else {
        // No estimate: stay with one tree. Use a degenerate mixture to
        // compute the baseline cost.
        let p = PartitionParams {
            mean_short: rekey_period * 10.0,
            mean_long: rekey_period * 10.0,
            alpha: 0.0,
            ..base
        };
        let cost = p.cost_one_keytree();
        return Recommendation {
            scheme: SchemeChoice::OneKeytree,
            predicted_cost: cost,
            one_keytree_cost: cost,
        };
    };

    let with_k = |k: u32| PartitionParams {
        k,
        mean_short: est.mean_short,
        mean_long: est.mean_long,
        alpha: est.alpha,
        ..base
    };
    let one_cost = with_k(0).cost_one_keytree();
    let mut best = Recommendation {
        scheme: SchemeChoice::OneKeytree,
        predicted_cost: one_cost,
        one_keytree_cost: one_cost,
    };
    for k in 1..=max_k {
        let p = with_k(k);
        let tt = p.cost_tt();
        if tt < best.predicted_cost {
            best.scheme = SchemeChoice::Tt { k };
            best.predicted_cost = tt;
        }
        let qt = p.cost_qt();
        if qt < best.predicted_cost {
            best.scheme = SchemeChoice::Qt { k };
            best.predicted_cost = qt;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
        -mean * (1.0 - rng.gen::<f64>()).ln()
    }

    fn collect_mixture(alpha: f64, ms: f64, ml: f64, n: usize, seed: u64) -> TraceCollector {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tc = TraceCollector::new(n);
        for i in 0..n as u64 {
            let mean = if rng.gen::<f64>() < alpha { ms } else { ml };
            let d = exponential(&mut rng, mean);
            tc.record_join(MemberId(i), 0.0);
            tc.record_leave(MemberId(i), d);
        }
        tc
    }

    #[test]
    fn estimates_recover_mixture() {
        let tc = collect_mixture(0.8, 180.0, 10_800.0, 4000, 1);
        let est = tc.estimate().expect("estimate available");
        assert!(
            (est.alpha - 0.8).abs() < 0.1,
            "alpha estimate {} off",
            est.alpha
        );
        assert!(
            est.mean_short < 600.0,
            "short mean {} too large",
            est.mean_short
        );
        assert!(
            est.mean_long > 4000.0,
            "long mean {} too small",
            est.mean_long
        );
    }

    #[test]
    fn homogeneous_group_yields_no_mixture() {
        let tc = collect_mixture(0.0, 180.0, 10_800.0, 1000, 2);
        // All durations from one exponential: cluster means stay
        // within a factor ~2 or a cluster degenerates.
        // (Exponential spread can occasionally split; accept either
        //  None or a weak mixture close to one class.)
        if let Some(est) = tc.estimate() {
            assert!(
                est.alpha < 0.95,
                "degenerate split claimed alpha {}",
                est.alpha
            );
        }
    }

    #[test]
    fn too_few_samples_yields_none() {
        let tc = collect_mixture(0.8, 180.0, 10_800.0, 5, 3);
        assert!(tc.estimate().is_none());
    }

    #[test]
    fn recommends_partitioning_for_dynamic_groups() {
        let est = MixtureEstimate {
            mean_short: 180.0,
            mean_long: 10_800.0,
            alpha: 0.8,
            samples: 1000,
        };
        let rec = recommend(65536, 4, 60.0, Some(est), 20);
        assert!(matches!(
            rec.scheme,
            SchemeChoice::Tt { .. } | SchemeChoice::Qt { .. }
        ));
        assert!(rec.predicted_cost < rec.one_keytree_cost * 0.85);
    }

    #[test]
    fn recommends_one_tree_for_stable_groups() {
        let est = MixtureEstimate {
            mean_short: 180.0,
            mean_long: 10_800.0,
            alpha: 0.1,
            samples: 1000,
        };
        let rec = recommend(65536, 4, 60.0, Some(est), 20);
        assert_eq!(rec.scheme, SchemeChoice::OneKeytree);
    }

    #[test]
    fn no_estimate_keeps_one_tree() {
        let rec = recommend(1024, 4, 60.0, None, 20);
        assert_eq!(rec.scheme, SchemeChoice::OneKeytree);
        assert_eq!(rec.predicted_cost, rec.one_keytree_cost);
    }

    #[test]
    fn collector_evicts_old_samples() {
        let mut tc = TraceCollector::new(8);
        for i in 0..20u64 {
            tc.record_join(MemberId(i), 0.0);
            tc.record_leave(MemberId(i), 1.0 + i as f64);
        }
        assert_eq!(tc.sample_count(), 8);
    }
}
