//! Performance-optimized group key management for secure multicast.
//!
//! This crate is the primary contribution of *"Performance
//! Optimizations for Group Key Management Schemes for Secure
//! Multicast"* (Zhu, Setia, Jajodia; ICDCS 2003), built on the LKH
//! substrate of [`rekey_keytree`]:
//!
//! - [`partition`] — the **two-partition key tree** (§3): short-term
//!   members live in an S-partition, survivors of the S-period migrate
//!   to an L-partition, so the frequent departures of short-lived
//!   members only perturb the small S-partition. Three constructions:
//!   [`partition::TtManager`] (tree + tree), [`partition::QtManager`]
//!   (queue + tree) and [`partition::PtManager`] (oracle placement).
//! - [`loss_forest`] — the **loss-homogenized key forest** (§4): one
//!   key tree per loss class keeps high-loss receivers from inflating
//!   the proactive replication of keys destined for low-loss
//!   receivers.
//! - [`combined`] — the §4.2 composition of the two: members estimate
//!   their loss rate from transport feedback while in the S-partition
//!   and migrate into loss-class L-trees.
//! - [`adaptive`] — the deployment loop of §3.4: estimate the
//!   membership-duration mixture from the observed trace, evaluate the
//!   analytic model, and switch to the best scheme.
//! - [`one_tree`] — the unoptimized single balanced key tree, the
//!   baseline every optimization is measured against.
//!
//! All of these schemes are built as [`engine::PlacementPolicy`]
//! implementations over the shared [`engine::RekeyEngine`] pipeline
//! (route → plan each tree → execute trees in parallel → merge →
//! refresh the DEK), and all managers implement [`GroupKeyManager`],
//! so simulations and applications can switch schemes freely.
//!
//! # Example
//!
//! ```
//! use rekey_core::{GroupKeyManager, Join};
//! use rekey_core::partition::TtManager;
//! use rekey_keytree::{member::GroupMember, MemberId};
//! use rekey_crypto::Key;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let mut manager = TtManager::new(4, 10);
//!
//! let ik = Key::generate(&mut rng);
//! let joins = vec![Join::new(MemberId(1), ik.clone())];
//! let outcome = manager.process_interval(&joins, &[], &mut rng)?;
//!
//! let mut alice = GroupMember::new(MemberId(1), ik);
//! alice.process(&outcome.message)?;
//! assert_eq!(alice.key_for(manager.dek_node()), Some(manager.dek()));
//! # Ok::<(), rekey_keytree::KeyTreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod combined;
pub mod engine;
pub mod loss_forest;
pub mod one_tree;
pub mod partition;
pub mod persist;
pub mod scheme;

mod dek;

pub use persist::{Journal, PersistError, Recovery};
pub use scheme::{Scheme, SchemeConfig, SchemeParseError};

use rand::RngCore;
use rekey_crypto::Key;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};

/// Information a joining member (or its access history) provides to
/// the key server. Managers use what they understand and ignore the
/// rest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinHint {
    /// Expected membership-duration class, if known in advance — used
    /// by the oracle PT-scheme (\[SMS00\]-style placement).
    pub expected_class: Option<DurationClass>,
    /// Estimated packet-loss rate, e.g. from a previous session or
    /// from the member's stay in the S-partition (§4.2) — used by the
    /// loss-homogenized forest.
    pub loss_rate: Option<f64>,
}

/// Membership-duration classes of the two-class model (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurationClass {
    /// Short-lived (class `Cs`, mean `Ms`).
    Short,
    /// Long-lived (class `Cl`, mean `Ml`).
    Long,
}

/// A join request: the member, its registered individual key, and
/// optional hints.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joining member.
    pub member: MemberId,
    /// The individual key established at registration.
    pub individual_key: Key,
    /// Optional characteristics.
    pub hint: JoinHint,
}

impl Join {
    /// A join with no hints.
    pub fn new(member: MemberId, individual_key: Key) -> Self {
        Join {
            member,
            individual_key,
            hint: JoinHint::default(),
        }
    }

    /// Attaches a duration-class hint.
    pub fn with_class(mut self, class: DurationClass) -> Self {
        self.hint.expected_class = Some(class);
        self
    }

    /// Attaches a loss-rate hint.
    pub fn with_loss_rate(mut self, loss: f64) -> Self {
        self.hint.loss_rate = Some(loss);
        self
    }
}

/// Statistics for one rekey interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalStats {
    /// Members that joined.
    pub joins: usize,
    /// Members that departed.
    pub leaves: usize,
    /// Members migrated between partitions (two-partition schemes).
    pub migrations: usize,
    /// Encrypted keys in the interval's rekey message — the paper's
    /// key-server bandwidth metric.
    pub encrypted_keys: usize,
    /// Serialized size of the interval's rekey message in bytes —
    /// the wire-level counterpart of `encrypted_keys` (entries carry
    /// headers in addition to the 60-byte wrapped key).
    pub message_bytes: usize,
}

/// Result of processing one rekey interval.
#[derive(Debug, Clone)]
pub struct IntervalOutcome {
    /// The merged multicast rekey message for the interval.
    pub message: RekeyMessage,
    /// Bandwidth and churn statistics.
    pub stats: IntervalStats,
}

/// A consumer of the rekey messages a manager emits, in epoch order —
/// the seam between key *management* and key *distribution*. The sim
/// driver's in-process delivery, the testkit's member farm, and the
/// `rekey-net` daemon's socket fan-out all sit behind this trait, so a
/// manager can be pointed at any of them without caring where the
/// bytes go.
pub trait RekeySink {
    /// Called once per interval with the merged multicast message.
    fn on_message(&mut self, message: &RekeyMessage);
}

impl<F: FnMut(&RekeyMessage)> RekeySink for F {
    fn on_message(&mut self, message: &RekeyMessage) {
        self(message)
    }
}

/// Common interface of all group-key management schemes.
///
/// One call to [`GroupKeyManager::process_interval`] corresponds to
/// one periodic batch rekeying (\[SKJ00\]): all joins and leaves of the
/// interval are applied, partitions are maintained (migrations,
/// placement), the group data-encryption key (DEK) is refreshed, and a
/// single rekey message is produced.
pub trait GroupKeyManager {
    /// Applies one interval's membership changes and rekeys the group.
    ///
    /// # Errors
    ///
    /// Returns [`KeyTreeError`] if the batch is inconsistent (unknown
    /// leaver, duplicate joiner).
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError>;

    /// Applies one interval and hands the resulting message to `sink`
    /// before returning — the fan-out hook a key-distribution daemon
    /// plugs into. The default forwards to
    /// [`GroupKeyManager::process_interval`].
    ///
    /// # Errors
    ///
    /// Same as [`GroupKeyManager::process_interval`]; the sink is not
    /// invoked on error.
    fn process_interval_into(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        rng: &mut dyn RngCore,
        sink: &mut dyn RekeySink,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        let outcome = self.process_interval(joins, leaves, rng)?;
        sink.on_message(&outcome.message);
        Ok(outcome)
    }

    /// Sets the worker count used for the encryption phase of batch
    /// rekeying (see `rekey_keytree::server::LkhServer::set_parallelism`).
    /// Rekey messages are byte-identical for every setting; workers
    /// only change wall-clock time. Managers without a parallel
    /// encryption phase ignore the setting (the default).
    fn set_parallelism(&mut self, workers: usize) {
        let _ = workers;
    }

    /// Node id under which the group DEK is distributed (stable).
    fn dek_node(&self) -> NodeId;

    /// The current group data-encryption key.
    fn dek(&self) -> &Key;

    /// Number of members currently in the group.
    fn member_count(&self) -> usize;

    /// Whether `member` is currently in the group.
    fn contains(&self, member: MemberId) -> bool;

    /// Audience oracle: the members holding the key of `node` —
    /// drives the transport layer's interest maps.
    fn members_under(&self, node: NodeId) -> Vec<MemberId>;

    /// Buffer-reusing variant of [`GroupKeyManager::members_under`]:
    /// appends the audience of `node` to `out` instead of allocating a
    /// fresh `Vec`. Hot loops (the sim driver queries one node per
    /// rekey entry per interval) clear and reuse a single buffer. The
    /// default delegates to `members_under`; managers with cheap
    /// append paths override it.
    fn members_under_into(&self, node: NodeId, out: &mut Vec<MemberId>) {
        out.extend(self.members_under(node));
    }

    /// A short human-readable scheme name for reports.
    fn scheme_name(&self) -> &'static str;

    /// Serializes the manager's full durable state (epoch, trees,
    /// policy bookkeeping, DEK) onto `buf`, such that a freshly-built
    /// manager of the same configuration restored from these bytes is
    /// behaviourally indistinguishable — it emits byte-identical rekey
    /// messages for any future input. The engine-based schemes all
    /// support this; the default declines.
    ///
    /// # Errors
    ///
    /// [`PersistError::Unsupported`] if the scheme cannot serialize
    /// (e.g. the adaptive switcher).
    fn save_state(&self, buf: &mut Vec<u8>) -> Result<(), PersistError> {
        let _ = buf;
        Err(PersistError::Unsupported {
            scheme: self.scheme_name(),
        })
    }

    /// Restores state serialized by [`GroupKeyManager::save_state`]
    /// into this manager, which must have been built with the same
    /// configuration (scheme, degree, namespaces).
    ///
    /// # Errors
    ///
    /// [`PersistError::Unsupported`] if the scheme cannot restore,
    /// [`PersistError::SchemeMismatch`] if the bytes belong to another
    /// scheme, [`PersistError::Codec`] if they do not parse.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let _ = bytes;
        Err(PersistError::Unsupported {
            scheme: self.scheme_name(),
        })
    }
}
