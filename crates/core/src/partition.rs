//! The two-partition key tree algorithm (§3).
//!
//! New members enter the S-partition; members that survive the
//! S-period of `K` rekey intervals migrate to the L-partition. A
//! departure of a short-lived member then only perturbs the small
//! S-partition: L-partition members need nothing but the refreshed
//! group DEK (one key, wrapped under the L-partition root).
//!
//! Three constructions, as in the paper, each a
//! [`PlacementPolicy`] over the shared [`RekeyEngine`] pipeline:
//!
//! - [`TtManager`] — balanced tree for both partitions: best when the
//!   S-partition is large,
//! - [`QtManager`] — linear queue for the S-partition: joins cost one
//!   key, departures cost one encryption per queued member; best when
//!   the S-partition is small,
//! - [`PtManager`] — oracle placement by expected duration class
//!   (\[SMS00\]-style a-priori knowledge); the upper bound on what
//!   partitioning can achieve since no migrations are ever needed.

use crate::engine::{
    DekCtx, IntervalCtx, Migration, Placement, PlacementPolicy, RekeyEngine, Trees,
};
use crate::{DurationClass, Join};
use rand::RngCore;
use rekey_crypto::Key;
use rekey_keytree::message::codec::{get_u32, get_u64, put_u32, put_u64};
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::queue::KeyQueue;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};
use std::collections::BTreeMap;

/// Default namespace base: DEK keys in namespace 1, S-partition ids in
/// 2, L-partition ids in 3 (see `with_namespace_base`).
const NS_DEK: u32 = 1;

/// Tree index of the S-partition in the two-tree schemes.
const S: usize = 0;
/// Tree index of the L-partition.
const L: usize = 1;

// ---------------------------------------------------------------------
// TT-scheme
// ---------------------------------------------------------------------

/// Placement for the TT-scheme: joiners enter the S-tree, S-period
/// survivors migrate to the L-tree.
#[derive(Debug, Clone)]
pub struct TtPolicy {
    /// Epoch at which each current S-member joined.
    s_ages: BTreeMap<MemberId, u64>,
    /// Registered individual keys of S-members (needed at migration).
    s_keys: BTreeMap<MemberId, Key>,
    k: u64,
}

impl PlacementPolicy for TtPolicy {
    fn scheme_name(&self) -> &'static str {
        "tt-scheme"
    }

    fn route_leave(&mut self, member: MemberId, trees: &Trees) -> Result<Placement, KeyTreeError> {
        if trees.server(S).contains(member) {
            self.s_ages.remove(&member);
            self.s_keys.remove(&member);
            Ok(Placement::Tree(S))
        } else if trees.server(L).contains(member) {
            Ok(Placement::Tree(L))
        } else {
            Err(KeyTreeError::UnknownMember(member))
        }
    }

    fn plan_migrations(&mut self, epoch: u64, _trees: &Trees) -> Vec<Migration> {
        // Members whose S-period elapsed migrate in this interval's
        // batch (before this interval's joins are added).
        let deadline = epoch.saturating_sub(self.k);
        let migrating: Vec<MemberId> = self
            .s_ages
            .iter()
            .filter(|&(_, &joined)| joined <= deadline)
            .map(|(&m, _)| m)
            .collect();
        migrating
            .into_iter()
            .map(|m| {
                self.s_ages.remove(&m);
                Migration {
                    member: m,
                    individual_key: self.s_keys.remove(&m).expect("S-member has a key"),
                    from: Some(S),
                    to: L,
                }
            })
            .collect()
    }

    fn route_join(&self, _join: &Join, _trees: &Trees) -> Placement {
        Placement::Tree(S)
    }

    fn record_joins(&mut self, joins: &[Join], epoch: u64) -> Result<(), KeyTreeError> {
        for j in joins {
            self.s_ages.insert(j.member, epoch);
            self.s_keys.insert(j.member, j.individual_key.clone());
        }
        Ok(())
    }

    fn save_policy_state(&self, buf: &mut Vec<u8>) {
        // One record per S-member: join epoch + individual key.
        // `s_ages` and `s_keys` always share a keyset (inserted and
        // removed together); `k` is configuration, not state.
        put_u32(buf, self.s_ages.len() as u32);
        for (&member, &joined) in &self.s_ages {
            put_u64(buf, member.0);
            put_u64(buf, joined);
            buf.extend_from_slice(self.s_keys[&member].as_bytes());
        }
    }

    fn load_policy_state(&mut self, buf: &mut &[u8]) -> Option<()> {
        let count = get_u32(buf)?;
        self.s_ages.clear();
        self.s_keys.clear();
        for _ in 0..count {
            let member = MemberId(get_u64(buf)?);
            let joined = get_u64(buf)?;
            let (key, rest) = buf.split_first_chunk::<32>()?;
            *buf = rest;
            self.s_ages.insert(member, joined);
            self.s_keys.insert(member, Key::from_bytes(*key));
        }
        Some(())
    }
}

/// Two balanced key trees: an S-tree for recent joiners and an L-tree
/// for members that survived the S-period.
pub type TtManager = RekeyEngine<TtPolicy>;

impl TtManager {
    /// Creates a TT-scheme manager with tree degree `degree` and
    /// S-period `k` rekey intervals (`K = Ts/Tp`).
    pub fn new(degree: usize, k: u64) -> Self {
        Self::with_namespace_base(degree, k, NS_DEK)
    }

    /// Like [`TtManager::new`], but drawing node ids from the three
    /// namespaces `base` (DEK), `base + 1` (S-tree), `base + 2`
    /// (L-tree). Callers that rebuild managers mid-session (e.g. the
    /// adaptive scheme switcher) use a fresh base per generation so
    /// node ids never collide with keys receivers still hold.
    pub fn with_namespace_base(degree: usize, k: u64, base: u32) -> Self {
        RekeyEngine::with_trees(
            TtPolicy {
                s_ages: BTreeMap::new(),
                s_keys: BTreeMap::new(),
                k,
            },
            vec![
                ("s", LkhServer::new(degree, base + 1)),
                ("l", LkhServer::new(degree, base + 2)),
            ],
            Some(base),
        )
    }

    /// Current S-partition population (`Ns`).
    pub fn s_count(&self) -> usize {
        self.tree(S).member_count()
    }

    /// Current L-partition population (`Nl`).
    pub fn l_count(&self) -> usize {
        self.tree(L).member_count()
    }
}

// ---------------------------------------------------------------------
// QT-scheme
// ---------------------------------------------------------------------

/// Placement for the QT-scheme: the S-partition is a [`KeyQueue`]
/// internal to the policy (no shared keys at all), the L-partition is
/// the engine's single tree.
#[derive(Debug, Clone)]
pub struct QtPolicy {
    queue: KeyQueue,
    k: u64,
}

impl PlacementPolicy for QtPolicy {
    fn scheme_name(&self) -> &'static str {
        "qt-scheme"
    }

    fn route_leave(&mut self, member: MemberId, trees: &Trees) -> Result<Placement, KeyTreeError> {
        if self.queue.contains(member) {
            self.queue.remove(member)?;
            Ok(Placement::Internal)
        } else if trees.server(0).contains(member) {
            Ok(Placement::Tree(0))
        } else {
            Err(KeyTreeError::UnknownMember(member))
        }
    }

    fn plan_migrations(&mut self, epoch: u64, _trees: &Trees) -> Vec<Migration> {
        let deadline = epoch.saturating_sub(self.k);
        self.queue
            .pop_older_than(deadline)
            .into_iter()
            .map(|slot| Migration {
                member: slot.member,
                individual_key: slot.individual_key,
                from: None,
                to: 0,
            })
            .collect()
    }

    fn route_join(&self, _join: &Join, _trees: &Trees) -> Placement {
        Placement::Internal
    }

    fn record_joins(&mut self, joins: &[Join], epoch: u64) -> Result<(), KeyTreeError> {
        for j in joins {
            self.queue.push(j.member, j.individual_key.clone(), epoch)?;
        }
        Ok(())
    }

    fn dek_entries(
        &mut self,
        dek: &DekCtx,
        interval: &IntervalCtx,
        trees: &Trees,
        message: &mut RekeyMessage,
        rng: &mut dyn RngCore,
    ) {
        let l = trees.server(0);
        if !interval.had_departures && interval.epoch > 1 {
            // Join phase (§3.2 phase 1): the new DEK rides under the
            // previous DEK for everyone already present, plus one
            // individual delivery per new joiner.
            let present = self.queue.len() + l.member_count() - interval.joins.len();
            message.entries.push(dek.wrap_under(
                dek.node(),
                dek.previous_version(),
                dek.previous_key(),
                false,
                None,
                present as u32,
                rng,
            ));
            for j in interval.joins {
                let slot = self.queue.slot(j.member).expect("just queued");
                message.entries.push(dek.wrap_under(
                    slot.node,
                    0,
                    &slot.individual_key,
                    true,
                    Some(j.member),
                    1,
                    rng,
                ));
            }
        } else {
            // Departure phase (§3.2 phase 2): the queue has no shared
            // keys, so the DEK is wrapped once per queued member
            // (Neq = Ns) plus once under the L-root.
            if l.member_count() > 0 {
                message.entries.push(dek.wrap_tree_root(l, rng));
            }
            for slot in self.queue.iter() {
                message.entries.push(dek.wrap_under(
                    slot.node,
                    0,
                    &slot.individual_key,
                    true,
                    Some(slot.member),
                    1,
                    rng,
                ));
            }
        }
    }

    fn internal_member_count(&self) -> usize {
        self.queue.len()
    }

    fn internal_contains(&self, member: MemberId) -> bool {
        self.queue.contains(member)
    }

    fn internal_members(&self, out: &mut Vec<MemberId>) {
        out.extend(self.queue.iter().map(|slot| slot.member));
    }

    fn internal_members_under(&self, node: NodeId) -> Option<Vec<MemberId>> {
        (node.namespace() == self.queue.namespace()).then(|| {
            self.queue
                .iter()
                .find(|s| s.node == node)
                .map(|s| vec![s.member])
                .unwrap_or_default()
        })
    }

    fn save_policy_state(&self, buf: &mut Vec<u8>) {
        self.queue.encode_into(buf);
    }

    fn load_policy_state(&mut self, buf: &mut &[u8]) -> Option<()> {
        let queue = KeyQueue::decode(buf)?;
        // The namespace is fixed at construction; a blob from a
        // differently-configured manager must not graft on.
        (queue.namespace() == self.queue.namespace()).then(|| self.queue = queue)
    }
}

/// A linear queue for the S-partition and a balanced tree for the
/// L-partition.
pub type QtManager = RekeyEngine<QtPolicy>;

impl QtManager {
    /// Creates a QT-scheme manager with L-tree degree `degree` and
    /// S-period `k` rekey intervals.
    pub fn new(degree: usize, k: u64) -> Self {
        Self::with_namespace_base(degree, k, NS_DEK)
    }

    /// Like [`QtManager::new`], but drawing node ids from the three
    /// namespaces `base` (DEK), `base + 1` (queue slots), `base + 2`
    /// (L-tree); see [`TtManager::with_namespace_base`].
    pub fn with_namespace_base(degree: usize, k: u64, base: u32) -> Self {
        RekeyEngine::with_trees(
            QtPolicy {
                queue: KeyQueue::new(base + 1),
                k,
            },
            vec![("l", LkhServer::new(degree, base + 2))],
            Some(base),
        )
    }

    /// Current S-partition population (`Ns`).
    pub fn s_count(&self) -> usize {
        self.policy().queue.len()
    }

    /// Current L-partition population (`Nl`).
    pub fn l_count(&self) -> usize {
        self.tree(0).member_count()
    }
}

// ---------------------------------------------------------------------
// PT-scheme
// ---------------------------------------------------------------------

/// Placement for the PT-scheme: members go straight into the partition
/// of their (known) duration class, so no migrations ever happen.
#[derive(Debug, Clone, Default)]
pub struct PtPolicy;

impl PlacementPolicy for PtPolicy {
    fn scheme_name(&self) -> &'static str {
        "pt-scheme"
    }

    fn route_leave(&mut self, member: MemberId, trees: &Trees) -> Result<Placement, KeyTreeError> {
        if trees.server(S).contains(member) {
            Ok(Placement::Tree(S))
        } else if trees.server(L).contains(member) {
            Ok(Placement::Tree(L))
        } else {
            Err(KeyTreeError::UnknownMember(member))
        }
    }

    fn route_join(&self, join: &Join, _trees: &Trees) -> Placement {
        match join.hint.expected_class {
            Some(DurationClass::Short) => Placement::Tree(S),
            // Unknown members default to the long partition, the safe
            // choice for stable groups.
            Some(DurationClass::Long) | None => Placement::Tree(L),
        }
    }
}

/// Oracle placement: members are placed directly into the partition of
/// their (known) duration class, so no migrations ever happen. The
/// upper bound of the two-partition idea.
pub type PtManager = RekeyEngine<PtPolicy>;

impl PtManager {
    /// Creates a PT-scheme manager with tree degree `degree`.
    pub fn new(degree: usize) -> Self {
        RekeyEngine::with_trees(
            PtPolicy,
            vec![
                ("s", LkhServer::new(degree, NS_DEK + 1)),
                ("l", LkhServer::new(degree, NS_DEK + 2)),
            ],
            Some(NS_DEK),
        )
    }

    /// Current short-class population.
    pub fn s_count(&self) -> usize {
        self.tree(S).member_count()
    }

    /// Current long-class population.
    pub fn l_count(&self) -> usize {
        self.tree(L).member_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupKeyManager, IntervalOutcome};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_keytree::member::GroupMember;

    struct Fixture {
        members: BTreeMap<MemberId, GroupMember>,
        next_id: u64,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                members: BTreeMap::new(),
                next_id: 0,
            }
        }

        fn joins(&mut self, n: usize, rng: &mut StdRng) -> Vec<Join> {
            (0..n)
                .map(|_| {
                    let id = MemberId(self.next_id);
                    self.next_id += 1;
                    let ik = Key::generate(rng);
                    self.members.insert(id, GroupMember::new(id, ik.clone()));
                    Join::new(id, ik)
                })
                .collect()
        }

        fn deliver(&mut self, out: &IntervalOutcome) {
            for m in self.members.values_mut() {
                let _ = m.process(&out.message);
            }
        }

        fn assert_synchronized(&self, mgr: &dyn GroupKeyManager, departed: &[MemberId]) {
            for (id, m) in &self.members {
                if departed.contains(id) {
                    assert_ne!(
                        m.key_for(mgr.dek_node()),
                        Some(mgr.dek()),
                        "departed {id} still holds the DEK"
                    );
                } else if mgr.contains(*id) {
                    assert_eq!(
                        m.key_for(mgr.dek_node()),
                        Some(mgr.dek()),
                        "member {id} lost the DEK"
                    );
                }
            }
        }
    }

    #[test]
    fn pt_routes_by_class_hint() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mgr = PtManager::new(4);
        let joins = vec![
            Join::new(MemberId(1), Key::generate(&mut rng)).with_class(DurationClass::Short),
            Join::new(MemberId(2), Key::generate(&mut rng)).with_class(DurationClass::Long),
            Join::new(MemberId(3), Key::generate(&mut rng)),
        ];
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        assert_eq!(mgr.s_count(), 1);
        assert_eq!(mgr.l_count(), 2);
    }

    #[test]
    fn tt_migration_happens_after_k_intervals() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut mgr = TtManager::new(4, 2);
        let mut fx = Fixture::new();
        let joins = fx.joins(5, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(mgr.s_count(), 5);
        assert_eq!(mgr.l_count(), 0);

        // K = 2: members joined at epoch 1 migrate at epoch 3.
        let out = mgr.process_interval(&[], &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(mgr.s_count(), 5, "migrated too early");
        let out = mgr.process_interval(&[], &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(mgr.s_count(), 0);
        assert_eq!(mgr.l_count(), 5);
        assert_eq!(out.stats.migrations, 5);
        fx.assert_synchronized(&mgr, &[]);
    }

    #[test]
    fn qt_departure_costs_queue_size() {
        let mut rng = StdRng::seed_from_u64(9);
        // Large K so nobody migrates during the test.
        let mut mgr = QtManager::new(4, 100);
        let mut fx = Fixture::new();
        let joins = fx.joins(10, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);

        let victim = MemberId(0);
        let out = mgr.process_interval(&[], &[victim], &mut rng).unwrap();
        fx.deliver(&out);
        // 9 queue members get individual DEK wraps; no L-tree.
        assert_eq!(out.stats.encrypted_keys, 9);
        fx.assert_synchronized(&mgr, &[victim]);
    }

    #[test]
    fn qt_pure_join_is_cheap() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut mgr = QtManager::new(4, 100);
        let mut fx = Fixture::new();
        let joins = fx.joins(10, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);

        // One more pure-join interval: 1 DEK-under-old-DEK entry plus
        // 3 individual entries.
        let joins = fx.joins(3, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(out.stats.encrypted_keys, 4);
        fx.assert_synchronized(&mgr, &[]);
    }

    #[test]
    fn unknown_leaver_is_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mgr = TtManager::new(4, 2);
        let err = mgr
            .process_interval(&[], &[MemberId(404)], &mut rng)
            .unwrap_err();
        assert_eq!(err, KeyTreeError::UnknownMember(MemberId(404)));
    }

    #[test]
    fn members_under_dek_is_whole_group() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut mgr = TtManager::new(4, 1);
        let mut fx = Fixture::new();
        let joins = fx.joins(8, &mut rng);
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        let all = mgr.members_under(mgr.dek_node());
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn qt_members_under_covers_queue_slots() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut mgr = QtManager::new(4, 100);
        let mut fx = Fixture::new();
        let joins = fx.joins(4, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        // Queue members lead the DEK audience, in arrival order.
        let all = mgr.members_under(mgr.dek_node());
        assert_eq!(all.len(), 4);
        // Every entry addressed to a queue slot has exactly that
        // member as its audience.
        let queue_ns = mgr.policy().queue.namespace();
        for (_, entry) in out.message.iter() {
            if entry.under.namespace() == queue_ns {
                let audience = mgr.members_under(entry.under);
                assert_eq!(audience, vec![entry.recipient.unwrap()]);
            }
        }
    }
}
