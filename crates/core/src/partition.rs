//! The two-partition key tree algorithm (§3).
//!
//! New members enter the S-partition; members that survive the
//! S-period of `K` rekey intervals migrate to the L-partition. A
//! departure of a short-lived member then only perturbs the small
//! S-partition: L-partition members need nothing but the refreshed
//! group DEK (one key, wrapped under the L-partition root).
//!
//! Three constructions, as in the paper:
//!
//! - [`TtManager`] — balanced tree for both partitions: best when the
//!   S-partition is large,
//! - [`QtManager`] — linear queue for the S-partition: joins cost one
//!   key, departures cost one encryption per queued member; best when
//!   the S-partition is small,
//! - [`PtManager`] — oracle placement by expected duration class
//!   (\[SMS00\]-style a-priori knowledge); the upper bound on what
//!   partitioning can achieve since no migrations are ever needed.

use crate::dek::DekState;
use crate::{DurationClass, GroupKeyManager, IntervalOutcome, IntervalStats, Join};
use rand::RngCore;
use rekey_crypto::Key;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::queue::KeyQueue;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};
use std::collections::BTreeMap;

const NS_DEK: u32 = 1;
const NS_S: u32 = 2;
const NS_L: u32 = 3;

/// Splits the departures of an interval into those currently in the
/// S-structure and those in the L-tree.
fn split_leaves(
    leaves: &[MemberId],
    in_s: impl Fn(MemberId) -> bool,
    l: &LkhServer,
) -> Result<(Vec<MemberId>, Vec<MemberId>), KeyTreeError> {
    let mut s_leaves = Vec::new();
    let mut l_leaves = Vec::new();
    for &m in leaves {
        if in_s(m) {
            s_leaves.push(m);
        } else if l.contains(m) {
            l_leaves.push(m);
        } else {
            return Err(KeyTreeError::UnknownMember(m));
        }
    }
    Ok((s_leaves, l_leaves))
}

// ---------------------------------------------------------------------
// TT-scheme
// ---------------------------------------------------------------------

/// Two balanced key trees: an S-tree for recent joiners and an L-tree
/// for members that survived the S-period.
#[derive(Debug, Clone)]
pub struct TtManager {
    dek: DekState,
    s: LkhServer,
    l: LkhServer,
    /// Epoch at which each current S-member joined.
    s_ages: BTreeMap<MemberId, u64>,
    /// Registered individual keys of S-members (needed at migration).
    s_keys: BTreeMap<MemberId, Key>,
    k: u64,
    epoch: u64,
}

impl TtManager {
    /// Creates a TT-scheme manager with tree degree `degree` and
    /// S-period `k` rekey intervals (`K = Ts/Tp`).
    pub fn new(degree: usize, k: u64) -> Self {
        TtManager {
            dek: DekState::new(NS_DEK),
            s: LkhServer::new(degree, NS_S),
            l: LkhServer::new(degree, NS_L),
            s_ages: BTreeMap::new(),
            s_keys: BTreeMap::new(),
            k,
            epoch: 0,
        }
    }

    /// Current S-partition population (`Ns`).
    pub fn s_count(&self) -> usize {
        self.s.member_count()
    }

    /// Current L-partition population (`Nl`).
    pub fn l_count(&self) -> usize {
        self.l.member_count()
    }
}

impl GroupKeyManager for TtManager {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        mut rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        self.epoch += 1;
        let (s_leaves, l_leaves) = split_leaves(leaves, |m| self.s.contains(m), &self.l)?;
        for m in &s_leaves {
            self.s_ages.remove(m);
            self.s_keys.remove(m);
        }

        // Members whose S-period elapsed migrate in this interval's
        // batch (before this interval's joins are added).
        let deadline = self.epoch.saturating_sub(self.k);
        let migrating: Vec<MemberId> = self
            .s_ages
            .iter()
            .filter(|&(_, &joined)| joined <= deadline)
            .map(|(&m, _)| m)
            .collect();
        let mut l_joins: Vec<(MemberId, Key)> = Vec::with_capacity(migrating.len());
        for m in &migrating {
            self.s_ages.remove(m);
            let ik = self.s_keys.remove(m).expect("S-member has a key");
            l_joins.push((*m, ik));
        }

        // S-batch: joins in, departures + migrations out.
        let s_joins: Vec<(MemberId, Key)> = joins
            .iter()
            .map(|j| (j.member, j.individual_key.clone()))
            .collect();
        let mut s_removals = s_leaves.clone();
        s_removals.extend(&migrating);
        let s_out = self.s.try_apply_batch(&s_joins, &s_removals, &mut rng)?;
        let l_out = self.l.try_apply_batch(&l_joins, &l_leaves, &mut rng)?;

        for j in joins {
            self.s_ages.insert(j.member, self.epoch);
            self.s_keys.insert(j.member, j.individual_key.clone());
        }

        // Refresh and distribute the DEK under each occupied root.
        self.dek.refresh(rng);
        let mut message = RekeyMessage::new(self.epoch);
        message.merge(s_out.message);
        message.merge(l_out.message);
        for server in [&self.s, &self.l] {
            if server.member_count() > 0 {
                message.entries.push(self.dek.wrap_under(
                    server.root_node(),
                    server.root_version(),
                    server.root_key(),
                    false,
                    None,
                    server.member_count() as u32,
                    rng,
                ));
            }
        }

        Ok(IntervalOutcome {
            stats: IntervalStats {
                joins: joins.len(),
                leaves: leaves.len(),
                migrations: migrating.len(),
                encrypted_keys: message.encrypted_key_count(),
                message_bytes: message.byte_len(),
            },
            message,
        })
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.s.set_parallelism(workers);
        self.l.set_parallelism(workers);
    }

    fn dek_node(&self) -> NodeId {
        self.dek.node
    }

    fn dek(&self) -> &Key {
        &self.dek.key
    }

    fn member_count(&self) -> usize {
        self.s.member_count() + self.l.member_count()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.s.contains(member) || self.l.contains(member)
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        match node.namespace() {
            NS_DEK => {
                let mut all = self.s.members_under(self.s.root_node());
                all.extend(self.l.members_under(self.l.root_node()));
                all
            }
            NS_S => self.s.members_under(node),
            NS_L => self.l.members_under(node),
            _ => Vec::new(),
        }
    }

    fn scheme_name(&self) -> &'static str {
        "tt-scheme"
    }
}

// ---------------------------------------------------------------------
// QT-scheme
// ---------------------------------------------------------------------

/// A linear queue for the S-partition and a balanced tree for the
/// L-partition.
#[derive(Debug, Clone)]
pub struct QtManager {
    dek: DekState,
    queue: KeyQueue,
    l: LkhServer,
    k: u64,
    epoch: u64,
}

impl QtManager {
    /// Creates a QT-scheme manager with L-tree degree `degree` and
    /// S-period `k` rekey intervals.
    pub fn new(degree: usize, k: u64) -> Self {
        QtManager {
            dek: DekState::new(NS_DEK),
            queue: KeyQueue::new(NS_S),
            l: LkhServer::new(degree, NS_L),
            k,
            epoch: 0,
        }
    }

    /// Current S-partition population (`Ns`).
    pub fn s_count(&self) -> usize {
        self.queue.len()
    }

    /// Current L-partition population (`Nl`).
    pub fn l_count(&self) -> usize {
        self.l.member_count()
    }
}

impl GroupKeyManager for QtManager {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        mut rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        self.epoch += 1;
        let (s_leaves, l_leaves) = split_leaves(leaves, |m| self.queue.contains(m), &self.l)?;
        for m in &s_leaves {
            self.queue.remove(*m)?;
        }

        let deadline = self.epoch.saturating_sub(self.k);
        let migrating = self.queue.pop_older_than(deadline);
        let l_joins: Vec<(MemberId, Key)> = migrating
            .iter()
            .map(|slot| (slot.member, slot.individual_key.clone()))
            .collect();
        let l_out = self.l.try_apply_batch(&l_joins, &l_leaves, &mut rng)?;

        for j in joins {
            self.queue
                .push(j.member, j.individual_key.clone(), self.epoch)?;
        }

        let (old_dek, old_version) = self.dek.refresh(rng);
        let mut message = RekeyMessage::new(self.epoch);
        message.merge(l_out.message);

        let no_departures = s_leaves.is_empty() && l_leaves.is_empty();
        if no_departures && self.epoch > 1 {
            // Join phase (§3.2 phase 1): the new DEK rides under the
            // previous DEK for everyone already present, plus one
            // individual delivery per new joiner.
            message.entries.push(self.dek.wrap_under(
                self.dek.node,
                old_version,
                &old_dek,
                false,
                None,
                (self.member_count() - joins.len()) as u32,
                rng,
            ));
            for j in joins {
                let slot = self.queue.slot(j.member).expect("just queued");
                message.entries.push(self.dek.wrap_under(
                    slot.node,
                    0,
                    &slot.individual_key,
                    true,
                    Some(j.member),
                    1,
                    rng,
                ));
            }
        } else {
            // Departure phase (§3.2 phase 2): the queue has no shared
            // keys, so the DEK is wrapped once per queued member
            // (Neq = Ns) plus once under the L-root.
            if self.l.member_count() > 0 {
                message.entries.push(self.dek.wrap_under(
                    self.l.root_node(),
                    self.l.root_version(),
                    self.l.root_key(),
                    false,
                    None,
                    self.l.member_count() as u32,
                    rng,
                ));
            }
            let slots: Vec<(MemberId, NodeId, Key)> = self
                .queue
                .iter()
                .map(|s| (s.member, s.node, s.individual_key.clone()))
                .collect();
            for (member, node, ik) in slots {
                message.entries.push(
                    self.dek
                        .wrap_under(node, 0, &ik, true, Some(member), 1, rng),
                );
            }
        }

        Ok(IntervalOutcome {
            stats: IntervalStats {
                joins: joins.len(),
                leaves: leaves.len(),
                migrations: migrating.len(),
                encrypted_keys: message.encrypted_key_count(),
                message_bytes: message.byte_len(),
            },
            message,
        })
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.l.set_parallelism(workers);
    }

    fn dek_node(&self) -> NodeId {
        self.dek.node
    }

    fn dek(&self) -> &Key {
        &self.dek.key
    }

    fn member_count(&self) -> usize {
        self.queue.len() + self.l.member_count()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.queue.contains(member) || self.l.contains(member)
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        match node.namespace() {
            NS_DEK => {
                let mut all = self.queue.members();
                all.extend(self.l.members_under(self.l.root_node()));
                all
            }
            NS_S => self
                .queue
                .iter()
                .find(|s| s.node == node)
                .map(|s| vec![s.member])
                .unwrap_or_default(),
            NS_L => self.l.members_under(node),
            _ => Vec::new(),
        }
    }

    fn scheme_name(&self) -> &'static str {
        "qt-scheme"
    }
}

// ---------------------------------------------------------------------
// PT-scheme
// ---------------------------------------------------------------------

/// Oracle placement: members are placed directly into the partition of
/// their (known) duration class, so no migrations ever happen. The
/// upper bound of the two-partition idea.
#[derive(Debug, Clone)]
pub struct PtManager {
    dek: DekState,
    s: LkhServer,
    l: LkhServer,
}

impl PtManager {
    /// Creates a PT-scheme manager with tree degree `degree`.
    pub fn new(degree: usize) -> Self {
        PtManager {
            dek: DekState::new(NS_DEK),
            s: LkhServer::new(degree, NS_S),
            l: LkhServer::new(degree, NS_L),
        }
    }

    /// Current short-class population.
    pub fn s_count(&self) -> usize {
        self.s.member_count()
    }

    /// Current long-class population.
    pub fn l_count(&self) -> usize {
        self.l.member_count()
    }
}

impl GroupKeyManager for PtManager {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        mut rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        let (s_leaves, l_leaves) = split_leaves(leaves, |m| self.s.contains(m), &self.l)?;
        let mut s_joins = Vec::new();
        let mut l_joins = Vec::new();
        for j in joins {
            match j.hint.expected_class {
                Some(DurationClass::Short) => s_joins.push((j.member, j.individual_key.clone())),
                // Unknown members default to the long partition, the
                // safe choice for stable groups.
                Some(DurationClass::Long) | None => {
                    l_joins.push((j.member, j.individual_key.clone()))
                }
            }
        }
        let s_out = self.s.try_apply_batch(&s_joins, &s_leaves, &mut rng)?;
        let l_out = self.l.try_apply_batch(&l_joins, &l_leaves, &mut rng)?;

        self.dek.refresh(rng);
        let mut message = RekeyMessage::new(s_out.message.epoch);
        message.merge(s_out.message);
        message.merge(l_out.message);
        for server in [&self.s, &self.l] {
            if server.member_count() > 0 {
                message.entries.push(self.dek.wrap_under(
                    server.root_node(),
                    server.root_version(),
                    server.root_key(),
                    false,
                    None,
                    server.member_count() as u32,
                    rng,
                ));
            }
        }

        Ok(IntervalOutcome {
            stats: IntervalStats {
                joins: joins.len(),
                leaves: leaves.len(),
                migrations: 0,
                encrypted_keys: message.encrypted_key_count(),
                message_bytes: message.byte_len(),
            },
            message,
        })
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.s.set_parallelism(workers);
        self.l.set_parallelism(workers);
    }

    fn dek_node(&self) -> NodeId {
        self.dek.node
    }

    fn dek(&self) -> &Key {
        &self.dek.key
    }

    fn member_count(&self) -> usize {
        self.s.member_count() + self.l.member_count()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.s.contains(member) || self.l.contains(member)
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        match node.namespace() {
            NS_DEK => {
                let mut all = self.s.members_under(self.s.root_node());
                all.extend(self.l.members_under(self.l.root_node()));
                all
            }
            NS_S => self.s.members_under(node),
            NS_L => self.l.members_under(node),
            _ => Vec::new(),
        }
    }

    fn scheme_name(&self) -> &'static str {
        "pt-scheme"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_keytree::member::GroupMember;

    struct Fixture {
        members: BTreeMap<MemberId, GroupMember>,
        next_id: u64,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                members: BTreeMap::new(),
                next_id: 0,
            }
        }

        fn joins(&mut self, n: usize, rng: &mut StdRng) -> Vec<Join> {
            (0..n)
                .map(|_| {
                    let id = MemberId(self.next_id);
                    self.next_id += 1;
                    let ik = Key::generate(rng);
                    self.members.insert(id, GroupMember::new(id, ik.clone()));
                    Join::new(id, ik)
                })
                .collect()
        }

        fn deliver(&mut self, out: &IntervalOutcome) {
            for m in self.members.values_mut() {
                let _ = m.process(&out.message);
            }
        }

        fn assert_synchronized(&self, mgr: &dyn GroupKeyManager, departed: &[MemberId]) {
            for (id, m) in &self.members {
                if departed.contains(id) {
                    assert_ne!(
                        m.key_for(mgr.dek_node()),
                        Some(mgr.dek()),
                        "departed {id} still holds the DEK"
                    );
                } else if mgr.contains(*id) {
                    assert_eq!(
                        m.key_for(mgr.dek_node()),
                        Some(mgr.dek()),
                        "member {id} lost the DEK"
                    );
                }
            }
        }
    }

    fn churn_scenario(mgr: &mut dyn GroupKeyManager, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fx = Fixture::new();
        let mut departed: Vec<MemberId> = Vec::new();

        // Interval 1: 20 joins.
        let joins = fx.joins(20, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);
        fx.assert_synchronized(mgr, &departed);

        // Intervals 2..12: churn with joins and leaves, spanning the
        // S-period so migrations occur.
        for round in 0..11u64 {
            let joins = fx.joins(4, &mut rng);
            let leave_ids: Vec<MemberId> = fx
                .members
                .keys()
                .filter(|id| mgr.contains(**id) && !departed.contains(id))
                .take(2 + (round % 2) as usize)
                .copied()
                .collect();
            let out = mgr.process_interval(&joins, &leave_ids, &mut rng).unwrap();
            departed.extend(&leave_ids);
            fx.deliver(&out);
            fx.assert_synchronized(mgr, &departed);
            assert!(out.stats.encrypted_keys > 0);
        }
        assert_eq!(mgr.member_count(), fx.members.len() - departed.len());
    }

    #[test]
    fn tt_scheme_end_to_end() {
        let mut mgr = TtManager::new(3, 3);
        churn_scenario(&mut mgr, 101);
        // After 12 intervals with K = 3, survivors of early rounds
        // must have migrated.
        assert!(mgr.l_count() > 0, "no members migrated to L");
    }

    #[test]
    fn qt_scheme_end_to_end() {
        let mut mgr = QtManager::new(3, 3);
        churn_scenario(&mut mgr, 202);
        assert!(mgr.l_count() > 0, "no members migrated to L");
    }

    #[test]
    fn pt_scheme_end_to_end() {
        let mut mgr = PtManager::new(3);
        churn_scenario(&mut mgr, 303);
    }

    #[test]
    fn pt_routes_by_class_hint() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mgr = PtManager::new(4);
        let joins = vec![
            Join::new(MemberId(1), Key::generate(&mut rng)).with_class(DurationClass::Short),
            Join::new(MemberId(2), Key::generate(&mut rng)).with_class(DurationClass::Long),
            Join::new(MemberId(3), Key::generate(&mut rng)),
        ];
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        assert_eq!(mgr.s_count(), 1);
        assert_eq!(mgr.l_count(), 2);
    }

    #[test]
    fn tt_migration_happens_after_k_intervals() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut mgr = TtManager::new(4, 2);
        let mut fx = Fixture::new();
        let joins = fx.joins(5, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(mgr.s_count(), 5);
        assert_eq!(mgr.l_count(), 0);

        // K = 2: members joined at epoch 1 migrate at epoch 3.
        let out = mgr.process_interval(&[], &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(mgr.s_count(), 5, "migrated too early");
        let out = mgr.process_interval(&[], &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(mgr.s_count(), 0);
        assert_eq!(mgr.l_count(), 5);
        fx.assert_synchronized(&mgr, &[]);
    }

    #[test]
    fn qt_departure_costs_queue_size() {
        let mut rng = StdRng::seed_from_u64(9);
        // Large K so nobody migrates during the test.
        let mut mgr = QtManager::new(4, 100);
        let mut fx = Fixture::new();
        let joins = fx.joins(10, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);

        let victim = MemberId(0);
        let out = mgr.process_interval(&[], &[victim], &mut rng).unwrap();
        fx.deliver(&out);
        // 9 queue members get individual DEK wraps; no L-tree.
        assert_eq!(out.stats.encrypted_keys, 9);
        fx.assert_synchronized(&mgr, &[victim]);
    }

    #[test]
    fn qt_pure_join_is_cheap() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut mgr = QtManager::new(4, 100);
        let mut fx = Fixture::new();
        let joins = fx.joins(10, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);

        // One more pure-join interval: 1 DEK-under-old-DEK entry plus
        // 3 individual entries.
        let joins = fx.joins(3, &mut rng);
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        fx.deliver(&out);
        assert_eq!(out.stats.encrypted_keys, 4);
        fx.assert_synchronized(&mgr, &[]);
    }

    #[test]
    fn unknown_leaver_is_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mgr = TtManager::new(4, 2);
        let err = mgr
            .process_interval(&[], &[MemberId(404)], &mut rng)
            .unwrap_err();
        assert_eq!(err, KeyTreeError::UnknownMember(MemberId(404)));
    }

    #[test]
    fn members_under_dek_is_whole_group() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut mgr = TtManager::new(4, 1);
        let mut fx = Fixture::new();
        let joins = fx.joins(8, &mut rng);
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        let all = mgr.members_under(mgr.dek_node());
        assert_eq!(all.len(), 8);
    }
}
