//! Durable key-forest state: an epoch write-ahead log plus periodic
//! snapshots over a pluggable [`Storage`] backend.
//!
//! # Design: log the inputs, not the outputs
//!
//! Every scheme in this crate is deterministic: given the same
//! membership batch and the same RNG stream, [`GroupKeyManager::
//! process_interval`] emits byte-identical rekey messages (the golden
//! conformance digests pin this). The WAL therefore records only an
//! interval's *inputs* — the epoch number, the RNG state *before* the
//! interval drew from it, and the join/leave batch — and recovery
//! simply re-runs the intervals. A WAL record is a few hundred bytes
//! regardless of group size, and replay reproduces every emitted byte,
//! so reconnecting clients can be served the exact frames they missed.
//!
//! # Write-ahead ordering
//!
//! [`Journal::durable_interval`] appends and fsyncs the epoch record
//! **before** handing the rekey message to the [`RekeySink`]. If the
//! append or sync fails, the frame is never released: a frame a client
//! may have seen is always re-derivable from disk. (The interval is
//! computed before the append — the record's contents don't depend on
//! the outputs — but nothing observable leaves the journal until the
//! log is durable.)
//!
//! # Snapshots bound replay
//!
//! Every `snapshot_every` intervals the journal serializes the whole
//! manager (trees, policy bookkeeping, DEK, epoch) together with the
//! *post*-interval RNG state, atomically replaces the snapshot blob,
//! and truncates the WAL. Recovery is then: restore the snapshot,
//! re-run the WAL tail (at most `snapshot_every` intervals), resume. A
//! crash between the snapshot write and the WAL truncation leaves
//! records the snapshot already covers; recovery skips any record
//! whose epoch is not past the snapshot's.

use crate::{GroupKeyManager, IntervalOutcome, Join, RekeySink};
use rand::rngs::StdRng;
use rekey_keytree::message::codec::{get_u32, get_u64, get_u8, put_u32, put_u64};
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::{KeyTreeError, MemberId};
use rekey_storage::{Storage, StorageError};
use std::fmt;
use std::time::Instant;

/// Version byte leading a serialized [`EpochRecord`].
pub const RECORD_WIRE_VERSION: u8 = 1;

/// Version byte leading a snapshot blob.
pub const SNAPSHOT_WIRE_VERSION: u8 = 1;

/// Error of a durability operation.
#[derive(Debug)]
pub enum PersistError {
    /// The storage backend failed.
    Storage(StorageError),
    /// A persisted blob did not parse (truncated, wrong magic,
    /// structurally invalid).
    Codec {
        /// What was being decoded.
        what: &'static str,
    },
    /// Replaying a WAL record against the restored manager failed —
    /// the log does not match the snapshot it extends.
    Replay(KeyTreeError),
    /// The manager does not support durable state (e.g. the adaptive
    /// switcher, which rebuilds its inner managers mid-session).
    Unsupported {
        /// Name of the scheme that cannot persist.
        scheme: &'static str,
    },
    /// The snapshot was written by a different scheme than the manager
    /// being restored.
    SchemeMismatch {
        /// Scheme of the restoring manager.
        expected: String,
        /// Scheme recorded in the snapshot.
        found: String,
    },
    /// WAL epochs are not contiguous with the recovered state — the
    /// log lost records in the middle, which repair cannot fix.
    EpochGap {
        /// The epoch recovery expected next.
        expected: u64,
        /// The epoch the record carried.
        found: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Storage(e) => write!(f, "storage backend: {e}"),
            PersistError::Codec { what } => write!(f, "corrupt persisted state: bad {what}"),
            PersistError::Replay(e) => write!(f, "WAL replay rejected by the manager: {e}"),
            PersistError::Unsupported { scheme } => {
                write!(f, "scheme {scheme} does not support durable state")
            }
            PersistError::SchemeMismatch { expected, found } => write!(
                f,
                "snapshot belongs to scheme {found}, manager runs {expected}"
            ),
            PersistError::EpochGap { expected, found } => {
                write!(f, "WAL epoch gap: expected epoch {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Storage(e) => Some(e),
            PersistError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

/// One interval's inputs — everything needed to re-run it bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Engine epoch this interval produced (1-based).
    pub epoch: u64,
    /// RNG state captured *before* the interval drew from it.
    pub rng_state: [u8; 32],
    /// The interval's join requests, hints included (hints steer
    /// placement, so they steer bytes).
    pub joins: Vec<Join>,
    /// The interval's departures, in batch order.
    pub leaves: Vec<MemberId>,
}

impl EpochRecord {
    /// Serializes the record onto `buf` ([`RECORD_WIRE_VERSION`]-led,
    /// big-endian, following the message codec conventions).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(RECORD_WIRE_VERSION);
        put_u64(buf, self.epoch);
        buf.extend_from_slice(&self.rng_state);
        put_u32(buf, self.joins.len() as u32);
        for join in &self.joins {
            put_u64(buf, join.member.0);
            buf.extend_from_slice(join.individual_key.as_bytes());
            buf.push(match join.hint.expected_class {
                None => 0,
                Some(crate::DurationClass::Short) => 1,
                Some(crate::DurationClass::Long) => 2,
            });
            match join.hint.loss_rate {
                None => buf.push(0),
                Some(loss) => {
                    buf.push(1);
                    put_u64(buf, loss.to_bits());
                }
            }
        }
        put_u32(buf, self.leaves.len() as u32);
        for &leave in &self.leaves {
            put_u64(buf, leave.0);
        }
    }

    /// Decodes a record serialized by [`EpochRecord::encode_into`],
    /// requiring the whole of `bytes` to be consumed.
    pub fn decode(bytes: &[u8]) -> Option<EpochRecord> {
        let mut buf = bytes;
        if get_u8(&mut buf)? != RECORD_WIRE_VERSION {
            return None;
        }
        let epoch = get_u64(&mut buf)?;
        let (rng_state, rest) = buf.split_first_chunk::<32>()?;
        buf = rest;
        let join_count = get_u32(&mut buf)? as usize;
        let mut joins = Vec::with_capacity(join_count);
        for _ in 0..join_count {
            let member = MemberId(get_u64(&mut buf)?);
            let (key, rest) = buf.split_first_chunk::<32>()?;
            buf = rest;
            let mut join = Join::new(member, rekey_crypto::Key::from_bytes(*key));
            join.hint.expected_class = match get_u8(&mut buf)? {
                0 => None,
                1 => Some(crate::DurationClass::Short),
                2 => Some(crate::DurationClass::Long),
                _ => return None,
            };
            join.hint.loss_rate = match get_u8(&mut buf)? {
                0 => None,
                1 => Some(f64::from_bits(get_u64(&mut buf)?)),
                _ => return None,
            };
            joins.push(join);
        }
        let leave_count = get_u32(&mut buf)? as usize;
        let mut leaves = Vec::with_capacity(leave_count);
        for _ in 0..leave_count {
            leaves.push(MemberId(get_u64(&mut buf)?));
        }
        buf.is_empty().then_some(EpochRecord {
            epoch,
            rng_state: *rng_state,
            joins,
            leaves,
        })
    }
}

/// What [`Journal::recover`] reconstructed from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The epoch the manager resumed at (0 on a fresh store).
    pub epoch: u64,
    /// The RNG positioned exactly where the crashed process left it,
    /// or `None` on a fresh store (seed a new one).
    pub rng: Option<StdRng>,
    /// The rekey messages re-derived from the WAL tail, in epoch
    /// order — republish these into the retransmission window so
    /// reconnecting clients can NACK across the crash.
    pub messages: Vec<RekeyMessage>,
    /// Whether a snapshot was restored.
    pub snapshot_loaded: bool,
    /// WAL records re-run (the tail past the snapshot).
    pub replayed: usize,
    /// Torn/corrupt bytes the backend discarded from the log tail.
    pub dropped_wal_bytes: usize,
}

/// The durability orchestrator: owns a [`Storage`] backend and runs
/// intervals write-ahead — log, fsync, *then* fan out — snapshotting
/// every `snapshot_every` intervals to bound replay.
#[derive(Debug)]
pub struct Journal<S> {
    storage: S,
    snapshot_every: u64,
    since_snapshot: u64,
    epoch: u64,
}

impl<S: Storage> Journal<S> {
    /// Creates a journal over `storage`, snapshotting every
    /// `snapshot_every` intervals (`0` disables periodic snapshots —
    /// the WAL then grows until [`Journal::snapshot`] is called
    /// explicitly, e.g. at drain).
    pub fn new(storage: S, snapshot_every: u64) -> Self {
        Journal {
            storage,
            snapshot_every,
            since_snapshot: 0,
            epoch: 0,
        }
    }

    /// The last epoch made durable (0 before any interval).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Direct access to the backend (fault injection in tests,
    /// inspection in tools).
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Consumes the journal, returning its backend — lets a test hand
    /// a "crashed" store to a fresh journal.
    pub fn into_storage(self) -> S {
        self.storage
    }

    /// Runs one interval durably: capture the RNG pre-state, process,
    /// append + fsync the [`EpochRecord`], and only then hand the
    /// frame to `sink`. On a storage error the sink is never invoked —
    /// no client can observe a frame the log cannot re-derive.
    ///
    /// # Errors
    ///
    /// [`PersistError::Replay`] if the batch is inconsistent,
    /// [`PersistError::Storage`] if the append or sync failed (the
    /// manager *has* advanced in memory at that point; callers should
    /// treat the journal as poisoned and stop the daemon).
    pub fn durable_interval(
        &mut self,
        manager: &mut dyn GroupKeyManager,
        joins: &[Join],
        leaves: &[MemberId],
        rng: &mut StdRng,
        sink: &mut dyn RekeySink,
    ) -> Result<IntervalOutcome, PersistError> {
        let rng_state = rng.state_bytes();
        let outcome = manager
            .process_interval(joins, leaves, rng)
            .map_err(PersistError::Replay)?;
        let record = EpochRecord {
            epoch: outcome.message.epoch,
            rng_state,
            joins: joins.to_vec(),
            leaves: leaves.to_vec(),
        };
        let mut buf = Vec::new();
        record.encode_into(&mut buf);
        self.storage.append_wal(&buf)?;
        let sync_start = Instant::now();
        self.storage.sync_wal()?;
        rekey_obs::time_ns("persist.wal.fsync", sync_start.elapsed().as_nanos() as u64);
        rekey_obs::count("persist.wal.append.records", 1);
        rekey_obs::count("persist.wal.append.bytes", buf.len() as u64);
        self.epoch = record.epoch;
        sink.on_message(&outcome.message);
        self.since_snapshot += 1;
        if self.snapshot_every > 0 && self.since_snapshot >= self.snapshot_every {
            self.snapshot(manager, rng)?;
        }
        Ok(outcome)
    }

    /// Serializes the manager + the RNG's current position, atomically
    /// replaces the snapshot, and truncates the WAL it subsumes. Also
    /// the drain-time flush: call on shutdown so restart replays
    /// nothing.
    ///
    /// # Errors
    ///
    /// [`PersistError::Unsupported`] if the manager cannot serialize,
    /// [`PersistError::Storage`] on a backend failure.
    pub fn snapshot(
        &mut self,
        manager: &dyn GroupKeyManager,
        rng: &StdRng,
    ) -> Result<(), PersistError> {
        let mut blob = Vec::new();
        blob.push(SNAPSHOT_WIRE_VERSION);
        put_u64(&mut blob, self.epoch);
        blob.extend_from_slice(&rng.state_bytes());
        manager.save_state(&mut blob)?;
        let write_start = Instant::now();
        self.storage.write_snapshot(&blob)?;
        self.storage.reset_wal()?;
        rekey_obs::time_ns(
            "persist.snapshot.write",
            write_start.elapsed().as_nanos() as u64,
        );
        rekey_obs::count("persist.snapshot.writes", 1);
        rekey_obs::count("persist.snapshot.bytes", blob.len() as u64);
        self.since_snapshot = 0;
        Ok(())
    }

    /// Rebuilds state from disk: restore the snapshot (if any) into
    /// `manager`, then re-run the WAL tail past it. After this returns
    /// the manager, the returned RNG, and the journal are positioned
    /// exactly as the crashed process left them.
    ///
    /// # Errors
    ///
    /// [`PersistError::SchemeMismatch`] if the snapshot belongs to a
    /// different scheme, [`PersistError::EpochGap`] if the log is not
    /// contiguous, [`PersistError::Codec`] on a corrupt snapshot or
    /// record (a torn WAL *tail* is repaired, not an error).
    pub fn recover(&mut self, manager: &mut dyn GroupKeyManager) -> Result<Recovery, PersistError> {
        let load_start = Instant::now();
        let mut epoch = 0u64;
        let mut rng = None;
        let mut snapshot_loaded = false;
        if let Some(blob) = self.storage.load_snapshot()? {
            let mut cursor = &blob[..];
            if get_u8(&mut cursor).ok_or(PersistError::Codec { what: "snapshot" })?
                != SNAPSHOT_WIRE_VERSION
            {
                return Err(PersistError::Codec {
                    what: "snapshot version",
                });
            }
            epoch = get_u64(&mut cursor).ok_or(PersistError::Codec { what: "snapshot" })?;
            let (state, rest) = cursor
                .split_first_chunk::<32>()
                .ok_or(PersistError::Codec { what: "snapshot" })?;
            manager.restore_state(rest)?;
            rng = Some(StdRng::from_state_bytes(*state));
            snapshot_loaded = true;
            rekey_obs::time_ns(
                "persist.snapshot.load",
                load_start.elapsed().as_nanos() as u64,
            );
        }

        let replay = self.storage.read_wal()?;
        let mut messages = Vec::new();
        let mut replayed = 0usize;
        for bytes in &replay.records {
            let record =
                EpochRecord::decode(bytes).ok_or(PersistError::Codec { what: "WAL record" })?;
            if record.epoch <= epoch {
                // The crash landed between the snapshot write and the
                // WAL truncation; the snapshot already covers this.
                continue;
            }
            if record.epoch != epoch + 1 {
                return Err(PersistError::EpochGap {
                    expected: epoch + 1,
                    found: record.epoch,
                });
            }
            let mut record_rng = StdRng::from_state_bytes(record.rng_state);
            let outcome = manager
                .process_interval(&record.joins, &record.leaves, &mut record_rng)
                .map_err(PersistError::Replay)?;
            if outcome.message.epoch != record.epoch {
                return Err(PersistError::EpochGap {
                    expected: record.epoch,
                    found: outcome.message.epoch,
                });
            }
            epoch = record.epoch;
            rng = Some(record_rng);
            messages.push(outcome.message);
            replayed += 1;
        }
        self.epoch = epoch;
        self.since_snapshot = replayed as u64;
        rekey_obs::count("persist.recover.replayed", replayed as u64);
        rekey_obs::count("persist.recover.dropped_bytes", replay.dropped_bytes as u64);
        Ok(Recovery {
            epoch,
            rng,
            messages,
            snapshot_loaded,
            replayed,
            dropped_wal_bytes: replay.dropped_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TtManager;
    use crate::Scheme;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_storage::{FaultStorage, MemStorage};

    fn joins(base: u64, n: usize, rng: &mut StdRng) -> Vec<Join> {
        (0..n as u64)
            .map(|i| Join::new(MemberId(base + i), Key::generate(rng)))
            .collect()
    }

    /// Runs `intervals` churn intervals through a journal, returning
    /// the emitted frame bytes.
    fn churn(
        journal: &mut Journal<impl Storage>,
        manager: &mut dyn GroupKeyManager,
        rng: &mut StdRng,
        intervals: u64,
    ) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        for i in 0..intervals {
            let js = joins(1000 * (i + 1), 3, rng);
            let leaves: Vec<MemberId> = if i > 1 {
                vec![MemberId(1000 * i)]
            } else {
                vec![]
            };
            let mut sink = |m: &RekeyMessage| {
                frames.push(rekey_keytree::message::codec::encode_message(m));
            };
            journal
                .durable_interval(manager, &js, &leaves, rng, &mut sink)
                .unwrap();
        }
        frames
    }

    #[test]
    fn epoch_record_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let record = EpochRecord {
            epoch: 42,
            rng_state: rng.state_bytes(),
            joins: vec![
                Join::new(MemberId(7), Key::generate(&mut rng)),
                Join::new(MemberId(8), Key::generate(&mut rng))
                    .with_class(crate::DurationClass::Short)
                    .with_loss_rate(0.25),
            ],
            leaves: vec![MemberId(1), MemberId(2)],
        };
        let mut buf = Vec::new();
        record.encode_into(&mut buf);
        let decoded = EpochRecord::decode(&buf).unwrap();
        assert_eq!(decoded.epoch, record.epoch);
        assert_eq!(decoded.rng_state, record.rng_state);
        assert_eq!(decoded.leaves, record.leaves);
        assert_eq!(decoded.joins.len(), 2);
        assert_eq!(decoded.joins[1].hint, record.joins[1].hint);
        // Truncations never parse.
        for cut in 0..buf.len() {
            assert!(EpochRecord::decode(&buf[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn recovery_from_wal_alone_is_byte_identical() {
        // Reference run: no crash.
        let mut rng = StdRng::seed_from_u64(99);
        let mut manager = TtManager::new(3, 4);
        let mut journal = Journal::new(MemStorage::new(), 0);
        let reference = churn(&mut journal, &mut manager, &mut rng, 6);

        // Crashed run: same storage contents, fresh manager.
        let mut rebuilt = TtManager::new(3, 4);
        let mut recovered = Journal::new(
            MemStorage::from_parts(journal.storage_mut().wal_bytes().to_vec(), None),
            0,
        );
        let recovery = recovered.recover(&mut rebuilt).unwrap();
        assert!(!recovery.snapshot_loaded);
        assert_eq!(recovery.replayed, 6);
        assert_eq!(recovery.epoch, 6);
        let replayed: Vec<Vec<u8>> = recovery
            .messages
            .iter()
            .map(rekey_keytree::message::codec::encode_message)
            .collect();
        assert_eq!(replayed, reference, "replay must reproduce every byte");

        // And the recovered state continues identically: the two RNG
        // streams are at the same position, so identical future calls
        // draw identical bytes on both sides.
        let mut recovered_rng = recovery.rng.unwrap();
        assert_eq!(recovered_rng.state_bytes(), rng.state_bytes());
        let js = joins(50_000, 2, &mut rng);
        let mirror = joins(50_000, 2, &mut recovered_rng);
        let a = manager.process_interval(&js, &[], &mut rng).unwrap();
        let b = rebuilt
            .process_interval(&mirror, &[], &mut recovered_rng)
            .unwrap();
        assert_eq!(
            rekey_keytree::message::codec::encode_message(&a.message),
            rekey_keytree::message::codec::encode_message(&b.message)
        );
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_resumes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut manager = TtManager::new(3, 3);
        let mut journal = Journal::new(MemStorage::new(), 4);
        let reference = churn(&mut journal, &mut manager, &mut rng, 10);
        // 10 intervals, snapshot every 4: WAL holds epochs 9..=10.
        let wal = journal.storage_mut().wal_bytes().to_vec();
        let snap = journal.storage_mut().snapshot_bytes();
        assert!(snap.is_some());

        let mut rebuilt = TtManager::new(3, 3);
        let mut recovered = Journal::new(MemStorage::from_parts(wal, snap), 4);
        let recovery = recovered.recover(&mut rebuilt).unwrap();
        assert!(recovery.snapshot_loaded);
        assert_eq!(recovery.epoch, 10);
        assert_eq!(recovery.replayed, 2, "snapshot bounded the replay");
        let replayed: Vec<Vec<u8>> = recovery
            .messages
            .iter()
            .map(rekey_keytree::message::codec::encode_message)
            .collect();
        assert_eq!(replayed, reference[8..], "tail frames re-derived exactly");
        assert_eq!(rebuilt.member_count(), manager.member_count());
    }

    #[test]
    fn every_scheme_survives_snapshot_restore() {
        for scheme in [
            Scheme::OneTree,
            Scheme::Tt,
            Scheme::Qt,
            Scheme::Pt,
            Scheme::LossForest,
            Scheme::Combined,
        ] {
            let config = crate::SchemeConfig::default();
            let mut rng = StdRng::seed_from_u64(31);
            let mut manager = scheme.build(&config);
            let mut journal = Journal::new(MemStorage::new(), 0);
            churn(&mut journal, &mut *manager, &mut rng, 5);
            journal.snapshot(&*manager, &rng).unwrap();
            assert_eq!(
                journal.storage_mut().wal_bytes().len(),
                0,
                "snapshot resets the WAL"
            );

            let mut rebuilt = scheme.build(&config);
            let mut recovered = Journal::new(
                MemStorage::from_parts(Vec::new(), journal.storage_mut().snapshot_bytes()),
                0,
            );
            let recovery = recovered.recover(&mut *rebuilt).unwrap();
            assert_eq!(recovery.replayed, 0);
            assert_eq!(recovery.epoch, 5, "{scheme:?}");
            assert_eq!(rebuilt.member_count(), manager.member_count());
            assert_eq!(rebuilt.dek(), manager.dek(), "{scheme:?} DEK restored");

            // Post-restore continuation is byte-identical.
            let mut rng_b = recovery.rng.unwrap();
            assert_eq!(rng_b.state_bytes(), rng.state_bytes());
            let js = joins(90_000, 2, &mut rng);
            let mirror = joins(90_000, 2, &mut rng_b);
            let a = manager.process_interval(&js, &[], &mut rng).unwrap();
            let b = rebuilt.process_interval(&mirror, &[], &mut rng_b).unwrap();
            assert_eq!(
                rekey_keytree::message::codec::encode_message(&a.message),
                rekey_keytree::message::codec::encode_message(&b.message),
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn scheme_mismatch_is_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut manager = TtManager::new(3, 4);
        let mut journal = Journal::new(MemStorage::new(), 0);
        churn(&mut journal, &mut manager, &mut rng, 2);
        journal.snapshot(&manager, &rng).unwrap();

        let mut other = crate::partition::QtManager::new(3, 4);
        let mut recovered = Journal::new(
            MemStorage::from_parts(Vec::new(), journal.storage_mut().snapshot_bytes()),
            0,
        );
        assert!(matches!(
            recovered.recover(&mut other),
            Err(PersistError::SchemeMismatch { .. })
        ));
    }

    #[test]
    fn adaptive_manager_reports_unsupported() {
        let mut rng = StdRng::seed_from_u64(4);
        let manager = crate::Scheme::Adaptive.build(&crate::SchemeConfig::default());
        let journal = &mut Journal::new(MemStorage::new(), 0);
        assert!(matches!(
            journal.snapshot(&*manager, &rng),
            Err(PersistError::Unsupported { .. })
        ));
        // Restoring into it fails the same way.
        let mut tt = TtManager::new(3, 4);
        let mut j2 = Journal::new(MemStorage::new(), 0);
        churn(&mut j2, &mut tt, &mut rng, 1);
        j2.snapshot(&tt, &rng).unwrap();
        let mut adaptive = crate::Scheme::Adaptive.build(&crate::SchemeConfig::default());
        let mut j3 = Journal::new(
            MemStorage::from_parts(Vec::new(), j2.storage_mut().snapshot_bytes()),
            0,
        );
        assert!(matches!(
            j3.recover(&mut *adaptive),
            Err(PersistError::Unsupported { .. })
        ));
    }

    /// The WAL-before-fan-out pin: when the append (or sync) fails,
    /// the sink must never see the frame — a frame no restart can
    /// re-derive must not reach a single client.
    #[test]
    fn failed_append_withholds_the_frame() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut manager = TtManager::new(3, 4);
        let mut storage = FaultStorage::new(MemStorage::new());
        storage.fail_after_appends(2);
        let mut journal = Journal::new(storage, 0);

        let mut delivered = 0usize;
        for i in 0..4u64 {
            let js = joins(100 * (i + 1), 2, &mut rng);
            let mut sink = |_: &RekeyMessage| delivered += 1;
            let result = journal.durable_interval(&mut manager, &js, &[], &mut rng, &mut sink);
            if i < 2 {
                result.unwrap();
            } else {
                assert!(matches!(
                    result,
                    Err(PersistError::Storage(StorageError::Injected))
                ));
            }
        }
        assert_eq!(delivered, 2, "no frame released after the log failed");
    }

    /// A torn WAL tail (crash mid-append) is repaired: replay stops at
    /// the last valid record and recovery proceeds from there.
    #[test]
    fn torn_wal_tail_recovers_to_last_valid_epoch() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut manager = TtManager::new(3, 4);
        let mut journal = Journal::new(FaultStorage::new(MemStorage::new()), 0);
        let frames = churn(&mut journal, &mut manager, &mut rng, 5);

        // Tear the last record mid-payload.
        journal.storage_mut().truncate_wal_tail(10);

        let mut rebuilt = TtManager::new(3, 4);
        let mut recovered = Journal::new(journal.into_storage(), 0);
        let recovery = recovered.recover(&mut rebuilt).unwrap();
        assert_eq!(recovery.replayed, 4, "tail record dropped");
        assert_eq!(recovery.epoch, 4);
        assert!(recovery.dropped_wal_bytes > 0);
        let replayed: Vec<Vec<u8>> = recovery
            .messages
            .iter()
            .map(rekey_keytree::message::codec::encode_message)
            .collect();
        assert_eq!(replayed, frames[..4]);
    }

    /// A corrupt byte mid-log also stops replay cleanly at the last
    /// record before the corruption.
    #[test]
    fn corrupt_wal_byte_stops_replay_at_last_valid_record() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut manager = TtManager::new(3, 4);
        let mut journal = Journal::new(FaultStorage::new(MemStorage::new()), 0);
        churn(&mut journal, &mut manager, &mut rng, 5);

        // Flip a byte about a third from the end of the stream: the
        // records at and past the corruption are lost, the prefix
        // replays.
        let wal_len = journal.storage_mut().wal_len();
        journal.storage_mut().corrupt_wal_byte(wal_len / 3);

        let mut rebuilt = TtManager::new(3, 4);
        let mut recovered = Journal::new(journal.into_storage(), 0);
        let recovery = recovered.recover(&mut rebuilt).unwrap();
        assert!(recovery.replayed < 5, "corruption truncated the replay");
        assert_eq!(recovery.epoch, recovery.replayed as u64);
        assert!(recovery.dropped_wal_bytes > 0);
    }
}
