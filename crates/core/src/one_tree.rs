//! The unoptimized baseline: one balanced key tree whose root is the
//! group DEK (\[WGL98, WHA98\] with periodic batching).

use crate::engine::{Placement, PlacementPolicy, RekeyEngine, Trees};
use crate::Join;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId};

/// Placement for the baseline: everyone lives in the single tree, and
/// its root *is* the group key (the engine runs with no DEK layer).
#[derive(Debug, Clone, Default)]
pub struct OneTreePolicy;

impl PlacementPolicy for OneTreePolicy {
    fn scheme_name(&self) -> &'static str {
        "one-keytree"
    }

    fn route_leave(
        &mut self,
        _member: MemberId,
        _trees: &Trees,
    ) -> Result<Placement, KeyTreeError> {
        // The sole tree validates membership itself when the batch is
        // planned, so routing never rejects.
        Ok(Placement::Tree(0))
    }

    fn route_join(&self, _join: &Join, _trees: &Trees) -> Placement {
        Placement::Tree(0)
    }
}

/// A single balanced LKH tree; the DEK is the tree root.
pub type OneTreeManager = RekeyEngine<OneTreePolicy>;

impl OneTreeManager {
    /// Creates the manager with the given key-tree degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2`.
    pub fn new(degree: usize) -> Self {
        Self::with_namespace(degree, 0)
    }

    /// Like [`OneTreeManager::new`], but drawing node ids from
    /// `namespace`. Callers that rebuild managers mid-session (e.g.
    /// the adaptive scheme switcher) use a fresh namespace per
    /// generation so node ids never collide with keys receivers still
    /// hold.
    pub fn with_namespace(degree: usize, namespace: u32) -> Self {
        RekeyEngine::with_trees(
            OneTreePolicy,
            vec![("main", LkhServer::new(degree, namespace))],
            None,
        )
    }

    /// Read access to the underlying server (for diagnostics/tests).
    pub fn server(&self) -> &LkhServer {
        self.tree(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupKeyManager;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_keytree::member::GroupMember;
    use rekey_keytree::MemberId;

    #[test]
    fn baseline_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mgr = OneTreeManager::new(4);
        let ik = Key::generate(&mut rng);
        let joins = vec![Join::new(MemberId(0), ik.clone())];
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        let mut m = GroupMember::new(MemberId(0), ik);
        m.process(&out.message).unwrap();
        assert_eq!(m.key_for(mgr.dek_node()), Some(mgr.dek()));
        assert_eq!(mgr.member_count(), 1);
        assert_eq!(mgr.scheme_name(), "one-keytree");
    }

    #[test]
    fn stats_reflect_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mgr = OneTreeManager::new(4);
        let joins: Vec<Join> = (0..10)
            .map(|i| Join::new(MemberId(i), Key::generate(&mut rng)))
            .collect();
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        let out = mgr
            .process_interval(&[], &[MemberId(0), MemberId(5)], &mut rng)
            .unwrap();
        assert_eq!(out.stats.leaves, 2);
        assert_eq!(out.stats.encrypted_keys, out.message.encrypted_key_count());
        assert!(out.stats.encrypted_keys > 0);
    }
}
