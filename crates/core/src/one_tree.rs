//! The unoptimized baseline: one balanced key tree whose root is the
//! group DEK (\[WGL98, WHA98\] with periodic batching).

use crate::{GroupKeyManager, IntervalOutcome, IntervalStats, Join};
use rand::RngCore;
use rekey_crypto::Key;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};

/// A single balanced LKH tree; the DEK is the tree root.
#[derive(Debug, Clone)]
pub struct OneTreeManager {
    server: LkhServer,
}

impl OneTreeManager {
    /// Creates the manager with the given key-tree degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2`.
    pub fn new(degree: usize) -> Self {
        OneTreeManager {
            server: LkhServer::new(degree, 0),
        }
    }

    /// Read access to the underlying server (for diagnostics/tests).
    pub fn server(&self) -> &LkhServer {
        &self.server
    }
}

impl GroupKeyManager for OneTreeManager {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        mut rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        let join_pairs: Vec<(MemberId, Key)> = joins
            .iter()
            .map(|j| (j.member, j.individual_key.clone()))
            .collect();
        let outcome = self.server.try_apply_batch(&join_pairs, leaves, &mut rng)?;
        Ok(IntervalOutcome {
            stats: IntervalStats {
                joins: joins.len(),
                leaves: leaves.len(),
                migrations: 0,
                encrypted_keys: outcome.message.encrypted_key_count(),
                message_bytes: outcome.message.byte_len(),
            },
            message: outcome.message,
        })
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.server.set_parallelism(workers);
    }

    fn dek_node(&self) -> NodeId {
        self.server.root_node()
    }

    fn dek(&self) -> &Key {
        self.server.root_key()
    }

    fn member_count(&self) -> usize {
        self.server.member_count()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.server.contains(member)
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        self.server.members_under(node)
    }

    fn scheme_name(&self) -> &'static str {
        "one-keytree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_keytree::member::GroupMember;

    #[test]
    fn baseline_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mgr = OneTreeManager::new(4);
        let ik = Key::generate(&mut rng);
        let joins = vec![Join::new(MemberId(0), ik.clone())];
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        let mut m = GroupMember::new(MemberId(0), ik);
        m.process(&out.message).unwrap();
        assert_eq!(m.key_for(mgr.dek_node()), Some(mgr.dek()));
        assert_eq!(mgr.member_count(), 1);
        assert_eq!(mgr.scheme_name(), "one-keytree");
    }

    #[test]
    fn stats_reflect_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mgr = OneTreeManager::new(4);
        let joins: Vec<Join> = (0..10)
            .map(|i| Join::new(MemberId(i), Key::generate(&mut rng)))
            .collect();
        mgr.process_interval(&joins, &[], &mut rng).unwrap();
        let out = mgr
            .process_interval(&[], &[MemberId(0), MemberId(5)], &mut rng)
            .unwrap();
        assert_eq!(out.stats.leaves, 2);
        assert_eq!(out.stats.encrypted_keys, out.message.encrypted_key_count());
        assert!(out.stats.encrypted_keys > 0);
    }
}
