//! The combined scheme the paper sketches in §4.2: two-partition
//! rekeying *and* loss-homogenized organization together.
//!
//! "The two-partition scheme we proposed in Section 3 can help solve
//! this issue because a long-duration member can estimate its loss
//! rate in the time period when it stays in the S-partition."
//!
//! [`CombinedManager`] keeps a tree S-partition for fresh joiners and
//! *one L-tree per loss class*. While a member sits in the
//! S-partition, the transport layer's NACK feedback accumulates in a
//! [`LossEstimator`]; when the member survives the S-period it
//! migrates into the L-tree matching its estimated loss rate. Members
//! that depart early never cost a placement decision at all, and the
//! L-trees stay loss-homogeneous, so both of the paper's savings
//! compose.

use crate::dek::DekState;
use crate::loss_forest::LossEstimator;
use crate::{GroupKeyManager, IntervalOutcome, IntervalStats, Join};
use rand::RngCore;
use rekey_crypto::Key;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};
use std::collections::BTreeMap;

const NS_DEK: u32 = 1;
const NS_S: u32 = 2;
const NS_L0: u32 = 16;

/// Two-partition + loss-homogenized group key manager (§3 + §4).
#[derive(Debug, Clone)]
pub struct CombinedManager {
    dek: DekState,
    s: LkhServer,
    boundaries: Vec<f64>,
    l_trees: Vec<LkhServer>,
    s_ages: BTreeMap<MemberId, u64>,
    s_keys: BTreeMap<MemberId, Key>,
    /// Loss hints provided at join time (fallback when no feedback has
    /// accumulated yet).
    join_hints: BTreeMap<MemberId, f64>,
    estimator: LossEstimator,
    min_samples: u64,
    k: u64,
    epoch: u64,
}

impl CombinedManager {
    /// Creates the manager: `degree`-ary trees, S-period `k`
    /// intervals, L-trees split at the loss `boundaries` (see
    /// [`crate::loss_forest::LossForestManager::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2` or `boundaries` is not strictly
    /// increasing within `(0, 1)`.
    pub fn new(degree: usize, k: u64, boundaries: &[f64]) -> Self {
        let mut prev = 0.0;
        for &b in boundaries {
            assert!(
                b > prev && b < 1.0,
                "class boundaries must be strictly increasing in (0, 1)"
            );
            prev = b;
        }
        CombinedManager {
            dek: DekState::new(NS_DEK),
            s: LkhServer::new(degree, NS_S),
            boundaries: boundaries.to_vec(),
            l_trees: (0..=boundaries.len())
                .map(|i| LkhServer::new(degree, NS_L0 + i as u32))
                .collect(),
            s_ages: BTreeMap::new(),
            s_keys: BTreeMap::new(),
            join_hints: BTreeMap::new(),
            estimator: LossEstimator::new(),
            min_samples: 20,
            k,
            epoch: 0,
        }
    }

    /// The paper's default shape: two L-trees split at 5% loss.
    pub fn two_loss_classes(degree: usize, k: u64) -> Self {
        Self::new(degree, k, &[0.05])
    }

    /// Feeds transport-layer loss feedback (e.g. from
    /// `rekey_transport::wka_bkr::WkaBkrOutcome::lost_packets`): the
    /// member observed `lost` of `seen` packets missing.
    pub fn record_feedback(&mut self, member: MemberId, lost: u64, seen: u64) {
        self.estimator.record(member, lost, seen);
    }

    /// The loss class a member would be placed into right now.
    pub fn class_for(&self, member: MemberId) -> usize {
        let loss = self
            .estimator
            .estimate(member, self.min_samples)
            .or_else(|| self.join_hints.get(&member).copied())
            .unwrap_or(0.0);
        self.boundaries
            .iter()
            .position(|&b| loss <= b)
            .unwrap_or(self.boundaries.len())
    }

    /// Current S-partition population.
    pub fn s_count(&self) -> usize {
        self.s.member_count()
    }

    /// Population of L-class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn l_class_size(&self, class: usize) -> usize {
        self.l_trees[class].member_count()
    }
}

impl GroupKeyManager for CombinedManager {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        mut rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        self.epoch += 1;

        // Route departures.
        let mut s_leaves: Vec<MemberId> = Vec::new();
        let mut l_leaves: Vec<Vec<MemberId>> = vec![Vec::new(); self.l_trees.len()];
        'leaves: for &m in leaves {
            if self.s.contains(m) {
                s_leaves.push(m);
                self.s_ages.remove(&m);
                self.s_keys.remove(&m);
                self.join_hints.remove(&m);
                continue;
            }
            for (i, tree) in self.l_trees.iter().enumerate() {
                if tree.contains(m) {
                    l_leaves[i].push(m);
                    self.join_hints.remove(&m);
                    continue 'leaves;
                }
            }
            return Err(KeyTreeError::UnknownMember(m));
        }

        // Migrations: S-period survivors, placed by estimated loss.
        let deadline = self.epoch.saturating_sub(self.k);
        let migrating: Vec<MemberId> = self
            .s_ages
            .iter()
            .filter(|&(_, &joined)| joined <= deadline)
            .map(|(&m, _)| m)
            .collect();
        let mut l_joins: Vec<Vec<(MemberId, Key)>> = vec![Vec::new(); self.l_trees.len()];
        for m in &migrating {
            self.s_ages.remove(m);
            let ik = self.s_keys.remove(m).expect("S-member has a key");
            l_joins[self.class_for(*m)].push((*m, ik));
        }

        // S-batch: joins in, departures + migrations out.
        let s_joins: Vec<(MemberId, Key)> = joins
            .iter()
            .map(|j| (j.member, j.individual_key.clone()))
            .collect();
        let mut s_removals = s_leaves.clone();
        s_removals.extend(&migrating);
        let s_out = self.s.try_apply_batch(&s_joins, &s_removals, &mut rng)?;

        let mut message = RekeyMessage::new(self.epoch);
        message.merge(s_out.message);
        for (i, tree) in self.l_trees.iter_mut().enumerate() {
            let out = tree.try_apply_batch(&l_joins[i], &l_leaves[i], &mut rng)?;
            message.merge(out.message);
        }

        for j in joins {
            self.s_ages.insert(j.member, self.epoch);
            self.s_keys.insert(j.member, j.individual_key.clone());
            if let Some(loss) = j.hint.loss_rate {
                self.join_hints.insert(j.member, loss);
            }
        }

        // DEK under every occupied root.
        self.dek.refresh(rng);
        let roots: Vec<&LkhServer> = std::iter::once(&self.s)
            .chain(self.l_trees.iter())
            .filter(|t| t.member_count() > 0)
            .collect();
        for tree in roots {
            message.entries.push(self.dek.wrap_under(
                tree.root_node(),
                tree.root_version(),
                tree.root_key(),
                false,
                None,
                tree.member_count() as u32,
                rng,
            ));
        }

        Ok(IntervalOutcome {
            stats: IntervalStats {
                joins: joins.len(),
                leaves: leaves.len(),
                migrations: migrating.len(),
                encrypted_keys: message.encrypted_key_count(),
                message_bytes: message.byte_len(),
            },
            message,
        })
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.s.set_parallelism(workers);
        for tree in &mut self.l_trees {
            tree.set_parallelism(workers);
        }
    }

    fn dek_node(&self) -> NodeId {
        self.dek.node
    }

    fn dek(&self) -> &Key {
        &self.dek.key
    }

    fn member_count(&self) -> usize {
        self.s.member_count()
            + self
                .l_trees
                .iter()
                .map(LkhServer::member_count)
                .sum::<usize>()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.s.contains(member) || self.l_trees.iter().any(|t| t.contains(member))
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        if node == self.dek.node {
            let mut all = self.s.members_under(self.s.root_node());
            for t in &self.l_trees {
                all.extend(t.members_under(t.root_node()));
            }
            return all;
        }
        if node.namespace() == NS_S {
            return self.s.members_under(node);
        }
        for tree in &self.l_trees {
            if node.namespace() == tree.tree().namespace() {
                return tree.members_under(node);
            }
        }
        Vec::new()
    }

    fn scheme_name(&self) -> &'static str {
        "combined-partition-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_keytree::member::GroupMember;

    fn joins(ids: std::ops::Range<u64>, rng: &mut StdRng) -> (Vec<Join>, Vec<GroupMember>) {
        let mut js = Vec::new();
        let mut states = Vec::new();
        for i in ids {
            let ik = Key::generate(rng);
            states.push(GroupMember::new(MemberId(i), ik.clone()));
            js.push(Join::new(MemberId(i), ik));
        }
        (js, states)
    }

    #[test]
    fn migration_places_by_estimated_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mgr = CombinedManager::two_loss_classes(4, 2);
        let (js, _) = joins(0..6, &mut rng);
        mgr.process_interval(&js, &[], &mut rng).unwrap();

        // Transport feedback while in the S-partition: members 0..3
        // lossy, members 3..6 clean.
        for i in 0..3u64 {
            mgr.record_feedback(MemberId(i), 20, 100);
        }
        for i in 3..6u64 {
            mgr.record_feedback(MemberId(i), 1, 100);
        }

        // Advance past the S-period so everyone migrates.
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        assert_eq!(mgr.s_count(), 0);
        assert_eq!(mgr.l_class_size(0), 3, "clean members in the low tree");
        assert_eq!(mgr.l_class_size(1), 3, "lossy members in the high tree");
    }

    #[test]
    fn join_hint_is_fallback_without_feedback() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mgr = CombinedManager::two_loss_classes(4, 1);
        let ik0 = Key::generate(&mut rng);
        let ik1 = Key::generate(&mut rng);
        let js = vec![
            Join::new(MemberId(0), ik0).with_loss_rate(0.3),
            Join::new(MemberId(1), ik1),
        ];
        mgr.process_interval(&js, &[], &mut rng).unwrap();
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        assert_eq!(mgr.l_class_size(1), 1, "hinted member in high tree");
        assert_eq!(mgr.l_class_size(0), 1, "unhinted member defaults low");
    }

    #[test]
    fn feedback_overrides_join_hint() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mgr = CombinedManager::two_loss_classes(4, 1);
        let ik = Key::generate(&mut rng);
        // Claimed clean at join, observed lossy in the S-partition.
        let js = vec![Join::new(MemberId(0), ik).with_loss_rate(0.01)];
        mgr.process_interval(&js, &[], &mut rng).unwrap();
        mgr.record_feedback(MemberId(0), 30, 100);
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        assert_eq!(mgr.l_class_size(1), 1);
    }

    #[test]
    fn end_to_end_secrecy_with_migrations() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mgr = CombinedManager::two_loss_classes(3, 2);
        let (js, mut states) = joins(0..20, &mut rng);
        let out = mgr.process_interval(&js, &[], &mut rng).unwrap();
        for s in &mut states {
            s.process(&out.message).unwrap();
        }
        for i in 0..10u64 {
            mgr.record_feedback(MemberId(i), 25, 100);
            mgr.record_feedback(MemberId(i + 10), 2, 100);
        }

        let mut departed = Vec::new();
        for round in 0..6u64 {
            let leaver = MemberId(round * 3);
            let out = mgr.process_interval(&[], &[leaver], &mut rng).unwrap();
            departed.push(leaver);
            for s in &mut states {
                let _ = s.process(&out.message);
            }
            for s in &states {
                if departed.contains(&s.id()) {
                    assert_ne!(s.key_for(mgr.dek_node()), Some(mgr.dek()));
                } else {
                    assert_eq!(
                        s.key_for(mgr.dek_node()),
                        Some(mgr.dek()),
                        "member {} lost DEK at round {round}",
                        s.id()
                    );
                }
            }
        }
        assert!(
            mgr.l_class_size(0) + mgr.l_class_size(1) > 0,
            "migrations happened"
        );
    }

    #[test]
    fn unknown_leaver_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mgr = CombinedManager::two_loss_classes(4, 2);
        assert!(matches!(
            mgr.process_interval(&[], &[MemberId(7)], &mut rng),
            Err(KeyTreeError::UnknownMember(_))
        ));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_boundaries_rejected() {
        CombinedManager::new(4, 2, &[0.5, 0.1]);
    }
}
