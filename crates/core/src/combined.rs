//! The combined scheme the paper sketches in §4.2: two-partition
//! rekeying *and* loss-homogenized organization together.
//!
//! "The two-partition scheme we proposed in Section 3 can help solve
//! this issue because a long-duration member can estimate its loss
//! rate in the time period when it stays in the S-partition."
//!
//! [`CombinedManager`] keeps a tree S-partition for fresh joiners and
//! *one L-tree per loss class*. While a member sits in the
//! S-partition, the transport layer's NACK feedback accumulates in a
//! [`LossEstimator`]; when the member survives the S-period it
//! migrates into the L-tree matching its estimated loss rate. Members
//! that depart early never cost a placement decision at all, and the
//! L-trees stay loss-homogeneous, so both of the paper's savings
//! compose.

use crate::engine::{Migration, Placement, PlacementPolicy, RekeyEngine, Trees};
use crate::loss_forest::{check_boundaries, class_of_loss, LossEstimator};
use crate::Join;
use rekey_crypto::Key;
use rekey_keytree::server::LkhServer;
use rekey_keytree::{KeyTreeError, MemberId};
use std::collections::BTreeMap;

const NS_DEK: u32 = 1;
const NS_S: u32 = 2;
const NS_L0: u32 = 16;

/// Tree index of the S-partition; L-class `c` is tree `1 + c`.
const S: usize = 0;

/// Placement for the combined scheme: joiners enter the S-tree,
/// S-period survivors migrate into the L-tree of their estimated loss
/// class.
#[derive(Debug, Clone)]
pub struct CombinedPolicy {
    boundaries: Vec<f64>,
    s_ages: BTreeMap<MemberId, u64>,
    s_keys: BTreeMap<MemberId, Key>,
    /// Loss hints provided at join time (fallback when no feedback has
    /// accumulated yet).
    join_hints: BTreeMap<MemberId, f64>,
    estimator: LossEstimator,
    min_samples: u64,
    k: u64,
}

impl CombinedPolicy {
    fn class_for(&self, member: MemberId) -> usize {
        let loss = self
            .estimator
            .estimate(member, self.min_samples)
            .or_else(|| self.join_hints.get(&member).copied())
            .unwrap_or(0.0);
        class_of_loss(&self.boundaries, loss)
    }
}

impl PlacementPolicy for CombinedPolicy {
    fn scheme_name(&self) -> &'static str {
        "combined-partition-forest"
    }

    fn route_leave(&mut self, member: MemberId, trees: &Trees) -> Result<Placement, KeyTreeError> {
        if trees.server(S).contains(member) {
            self.s_ages.remove(&member);
            self.s_keys.remove(&member);
            self.join_hints.remove(&member);
            return Ok(Placement::Tree(S));
        }
        for i in 1..trees.len() {
            if trees.server(i).contains(member) {
                self.join_hints.remove(&member);
                return Ok(Placement::Tree(i));
            }
        }
        Err(KeyTreeError::UnknownMember(member))
    }

    fn plan_migrations(&mut self, epoch: u64, _trees: &Trees) -> Vec<Migration> {
        // S-period survivors, placed by estimated loss.
        let deadline = epoch.saturating_sub(self.k);
        let migrating: Vec<MemberId> = self
            .s_ages
            .iter()
            .filter(|&(_, &joined)| joined <= deadline)
            .map(|(&m, _)| m)
            .collect();
        migrating
            .into_iter()
            .map(|m| {
                self.s_ages.remove(&m);
                Migration {
                    member: m,
                    individual_key: self.s_keys.remove(&m).expect("S-member has a key"),
                    from: Some(S),
                    to: 1 + self.class_for(m),
                }
            })
            .collect()
    }

    fn route_join(&self, _join: &Join, _trees: &Trees) -> Placement {
        Placement::Tree(S)
    }

    fn record_joins(&mut self, joins: &[Join], epoch: u64) -> Result<(), KeyTreeError> {
        for j in joins {
            self.s_ages.insert(j.member, epoch);
            self.s_keys.insert(j.member, j.individual_key.clone());
            if let Some(loss) = j.hint.loss_rate {
                self.join_hints.insert(j.member, loss);
            }
        }
        Ok(())
    }

    fn save_policy_state(&self, buf: &mut Vec<u8>) {
        use rekey_keytree::message::codec::{put_u32, put_u64};
        // S-partition bookkeeping (same shape as the TT policy's).
        put_u32(buf, self.s_ages.len() as u32);
        for (&member, &joined) in &self.s_ages {
            put_u64(buf, member.0);
            put_u64(buf, joined);
            buf.extend_from_slice(self.s_keys[&member].as_bytes());
        }
        // Join-time loss hints (f64 bit patterns, big-endian).
        put_u32(buf, self.join_hints.len() as u32);
        for (&member, &loss) in &self.join_hints {
            put_u64(buf, member.0);
            put_u64(buf, loss.to_bits());
        }
        self.estimator.save_into(buf);
        // Boundaries, k, and min_samples are configuration.
    }

    fn load_policy_state(&mut self, buf: &mut &[u8]) -> Option<()> {
        use rekey_keytree::message::codec::{get_u32, get_u64};
        let count = get_u32(buf)?;
        self.s_ages.clear();
        self.s_keys.clear();
        for _ in 0..count {
            let member = MemberId(get_u64(buf)?);
            let joined = get_u64(buf)?;
            let (key, rest) = buf.split_first_chunk::<32>()?;
            *buf = rest;
            self.s_ages.insert(member, joined);
            self.s_keys.insert(member, Key::from_bytes(*key));
        }
        let count = get_u32(buf)?;
        self.join_hints.clear();
        for _ in 0..count {
            let member = MemberId(get_u64(buf)?);
            self.join_hints
                .insert(member, f64::from_bits(get_u64(buf)?));
        }
        self.estimator = LossEstimator::load_from(buf)?;
        Some(())
    }
}

/// Two-partition + loss-homogenized group key manager (§3 + §4).
pub type CombinedManager = RekeyEngine<CombinedPolicy>;

impl CombinedManager {
    /// Creates the manager: `degree`-ary trees, S-period `k`
    /// intervals, L-trees split at the loss `boundaries` (see
    /// [`crate::loss_forest::LossForestManager::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2` or `boundaries` is not strictly
    /// increasing within `(0, 1)`.
    pub fn new(degree: usize, k: u64, boundaries: &[f64]) -> Self {
        check_boundaries(boundaries);
        let l_names: Vec<String> = (0..=boundaries.len()).map(|i| format!("l{i}")).collect();
        let mut trees = vec![("s", LkhServer::new(degree, NS_S))];
        trees.extend(
            l_names
                .iter()
                .map(String::as_str)
                .zip((0..=boundaries.len()).map(|i| LkhServer::new(degree, NS_L0 + i as u32))),
        );
        RekeyEngine::with_trees(
            CombinedPolicy {
                boundaries: boundaries.to_vec(),
                s_ages: BTreeMap::new(),
                s_keys: BTreeMap::new(),
                join_hints: BTreeMap::new(),
                estimator: LossEstimator::new(),
                min_samples: 20,
                k,
            },
            trees,
            Some(NS_DEK),
        )
    }

    /// The paper's default shape: two L-trees split at 5% loss.
    pub fn two_loss_classes(degree: usize, k: u64) -> Self {
        Self::new(degree, k, &[0.05])
    }

    /// Feeds transport-layer loss feedback (e.g. from
    /// `rekey_transport::wka_bkr::WkaBkrOutcome::lost_packets`): the
    /// member observed `lost` of `seen` packets missing.
    pub fn record_feedback(&mut self, member: MemberId, lost: u64, seen: u64) {
        self.policy_mut().estimator.record(member, lost, seen);
    }

    /// The loss class a member would be placed into right now.
    pub fn class_for(&self, member: MemberId) -> usize {
        self.policy().class_for(member)
    }

    /// Current S-partition population.
    pub fn s_count(&self) -> usize {
        self.tree(S).member_count()
    }

    /// Population of L-class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn l_class_size(&self, class: usize) -> usize {
        self.tree(1 + class).member_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupKeyManager;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_keytree::member::GroupMember;

    fn joins(ids: std::ops::Range<u64>, rng: &mut StdRng) -> (Vec<Join>, Vec<GroupMember>) {
        let mut js = Vec::new();
        let mut states = Vec::new();
        for i in ids {
            let ik = Key::generate(rng);
            states.push(GroupMember::new(MemberId(i), ik.clone()));
            js.push(Join::new(MemberId(i), ik));
        }
        (js, states)
    }

    #[test]
    fn migration_places_by_estimated_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mgr = CombinedManager::two_loss_classes(4, 2);
        let (js, _) = joins(0..6, &mut rng);
        mgr.process_interval(&js, &[], &mut rng).unwrap();

        // Transport feedback while in the S-partition: members 0..3
        // lossy, members 3..6 clean.
        for i in 0..3u64 {
            mgr.record_feedback(MemberId(i), 20, 100);
        }
        for i in 3..6u64 {
            mgr.record_feedback(MemberId(i), 1, 100);
        }

        // Advance past the S-period so everyone migrates.
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        let out = mgr.process_interval(&[], &[], &mut rng).unwrap();
        assert_eq!(out.stats.migrations, 6);
        assert_eq!(mgr.s_count(), 0);
        assert_eq!(mgr.l_class_size(0), 3, "clean members in the low tree");
        assert_eq!(mgr.l_class_size(1), 3, "lossy members in the high tree");
    }

    #[test]
    fn join_hint_is_fallback_without_feedback() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mgr = CombinedManager::two_loss_classes(4, 1);
        let ik0 = Key::generate(&mut rng);
        let ik1 = Key::generate(&mut rng);
        let js = vec![
            Join::new(MemberId(0), ik0).with_loss_rate(0.3),
            Join::new(MemberId(1), ik1),
        ];
        mgr.process_interval(&js, &[], &mut rng).unwrap();
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        assert_eq!(mgr.l_class_size(1), 1, "hinted member in high tree");
        assert_eq!(mgr.l_class_size(0), 1, "unhinted member defaults low");
    }

    #[test]
    fn feedback_overrides_join_hint() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mgr = CombinedManager::two_loss_classes(4, 1);
        let ik = Key::generate(&mut rng);
        // Claimed clean at join, observed lossy in the S-partition.
        let js = vec![Join::new(MemberId(0), ik).with_loss_rate(0.01)];
        mgr.process_interval(&js, &[], &mut rng).unwrap();
        mgr.record_feedback(MemberId(0), 30, 100);
        mgr.process_interval(&[], &[], &mut rng).unwrap();
        assert_eq!(mgr.l_class_size(1), 1);
    }

    #[test]
    fn unknown_leaver_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mgr = CombinedManager::two_loss_classes(4, 2);
        assert!(matches!(
            mgr.process_interval(&[], &[MemberId(7)], &mut rng),
            Err(KeyTreeError::UnknownMember(_))
        ));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_boundaries_rejected() {
        CombinedManager::new(4, 2, &[0.5, 0.1]);
    }
}
