//! The shared multi-tree rekey engine.
//!
//! Every scheme in this crate — the one-tree baseline, the §3
//! two-partition constructions, the §4 loss-homogenized forest, and
//! the §4.2 combination — is the same pipeline: *route members among
//! several LKH trees, batch-rekey each tree, merge the messages, and
//! refresh the group DEK above the roots*. [`RekeyEngine`] implements
//! that pipeline once; a scheme is reduced to a [`PlacementPolicy`]
//! that answers the routing questions (where does a joiner go, who
//! migrates, how is the DEK distributed).
//!
//! # Epoch pipeline
//!
//! One [`GroupKeyManager::process_interval`] call runs:
//!
//! 1. **Route departures** — [`PlacementPolicy::route_leave`] assigns
//!    each leaver to the tree (or policy-internal structure) holding
//!    it, updating policy bookkeeping.
//! 2. **Plan migrations** — [`PlacementPolicy::plan_migrations`]
//!    names the members whose placement changes this interval (e.g.
//!    S-period survivors). The engine turns each into a removal from
//!    the source tree and a join into the destination tree.
//! 3. **Route joins** — [`PlacementPolicy::route_join`] picks the
//!    destination tree (or internal structure) for each joiner.
//! 4. **Plan every tree** — sequentially, in tree order, against the
//!    caller's RNG ([`LkhServer::plan_batch`]). Sequential planning
//!    pins the RNG draw order, which pins every emitted byte.
//! 5. **Record joins** — [`PlacementPolicy::record_joins`] updates
//!    policy bookkeeping (ages, keys, queues).
//! 6. **Execute every tree** — [`LkhServer::execute_planned`] is pure,
//!    so the engine fans the trees out across scoped threads when the
//!    batch is large enough ([`RekeyEngine::set_parallelism`]), each
//!    under a `rekey.tree.<name>` span. Output bytes are identical at
//!    every worker count.
//! 7. **Merge** — tree messages are merged in tree order.
//! 8. **Refresh + distribute the DEK** — the engine refreshes the DEK
//!    and [`PlacementPolicy::dek_entries`] appends the entries that
//!    deliver it (default: once under every occupied tree root).
//!
//! The whole interval runs under a `rekey.batch` span.

use crate::dek::DekState;
use crate::persist::PersistError;
use crate::{GroupKeyManager, IntervalOutcome, IntervalStats, Join};
use rand::RngCore;
use rekey_crypto::Key;
use rekey_keytree::message::codec::{get_u32, get_u64, get_u8, put_u32, put_u64};
use rekey_keytree::message::{RekeyEntry, RekeyMessage};
use rekey_keytree::server::{BatchOutcome, LkhServer, PlannedBatch};
use rekey_keytree::{KeyTreeError, MemberId, NodeId};

/// Version byte leading a serialized [`RekeyEngine`] state blob.
pub const ENGINE_WIRE_VERSION: u8 = 1;

/// Below this many planned encryptions (summed over all trees) the
/// engine executes trees inline even when parallelism is enabled:
/// cross-tree thread fan-out would cost more than it saves.
const CROSS_TREE_MIN_JOBS: usize = 64;

/// One tree's join batch for an interval.
type TreeBatchJoins = Vec<(MemberId, Key)>;
/// One tree's leave batch for an interval.
type TreeBatchLeaves = Vec<MemberId>;

/// Where a routed member goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Into the engine tree with this index.
    Tree(usize),
    /// Into a policy-internal structure (e.g. the QT-scheme's key
    /// queue); the engine's trees are not involved.
    Internal,
}

/// One member changing placement this interval (e.g. an S-period
/// survivor moving to the L-partition).
#[derive(Debug, Clone)]
pub struct Migration {
    /// The migrating member.
    pub member: MemberId,
    /// Its registered individual key (needed to join the destination
    /// tree).
    pub individual_key: Key,
    /// Source tree, or `None` if the member lived in a
    /// policy-internal structure.
    pub from: Option<usize>,
    /// Destination tree.
    pub to: usize,
}

/// Read-only view of the engine's trees, handed to policy callbacks.
#[derive(Debug, Clone, Copy)]
pub struct Trees<'a> {
    slots: &'a [TreeSlot],
}

impl<'a> Trees<'a> {
    /// Number of trees.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the engine owns no trees.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The server of tree `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn server(&self, index: usize) -> &'a LkhServer {
        &self.slots[index].server
    }

    /// Iterates over the tree servers in tree order.
    pub fn iter(self) -> impl Iterator<Item = &'a LkhServer> + 'a {
        self.slots.iter().map(|slot| &slot.server)
    }

    /// Index of the tree holding `member`, scanning in tree order.
    pub fn find(&self, member: MemberId) -> Option<usize> {
        self.slots
            .iter()
            .position(|slot| slot.server.contains(member))
    }

    /// Total members across all trees (policy-internal members not
    /// included).
    pub fn total_members(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| slot.server.member_count())
            .sum()
    }
}

/// Interval facts handed to [`PlacementPolicy::dek_entries`].
#[derive(Debug, Clone, Copy)]
pub struct IntervalCtx<'a> {
    /// The engine epoch of this interval (1-based).
    pub epoch: u64,
    /// This interval's join requests.
    pub joins: &'a [Join],
    /// Whether any member departed this interval.
    pub had_departures: bool,
}

/// Handle on the freshly-rotated group DEK, letting policies wrap it
/// without owning the key state.
#[derive(Debug)]
pub struct DekCtx<'a> {
    dek: &'a DekState,
    previous_key: Key,
    previous_version: u64,
}

impl DekCtx<'_> {
    /// Node id the DEK is distributed under.
    pub fn node(&self) -> NodeId {
        self.dek.node
    }

    /// The DEK key that was current *before* this interval's refresh —
    /// join-only intervals may re-wrap the new DEK under it.
    pub fn previous_key(&self) -> &Key {
        &self.previous_key
    }

    /// Version of [`DekCtx::previous_key`].
    pub fn previous_version(&self) -> u64 {
        self.previous_version
    }

    /// Entry wrapping the current DEK under an arbitrary key; see
    /// `DekState::wrap_under`.
    #[allow(clippy::too_many_arguments)]
    pub fn wrap_under(
        &self,
        under: NodeId,
        under_version: u64,
        under_key: &Key,
        under_is_leaf: bool,
        recipient: Option<MemberId>,
        audience: u32,
        rng: &mut dyn RngCore,
    ) -> RekeyEntry {
        self.dek.wrap_under(
            under,
            under_version,
            under_key,
            under_is_leaf,
            recipient,
            audience,
            rng,
        )
    }

    /// Entry wrapping the current DEK under a tree's root key, with
    /// the tree's population as the audience.
    pub fn wrap_tree_root(&self, server: &LkhServer, rng: &mut dyn RngCore) -> RekeyEntry {
        self.wrap_under(
            server.root_node(),
            server.root_version(),
            server.root_key(),
            false,
            None,
            server.member_count() as u32,
            rng,
        )
    }
}

/// A scheme, reduced to its placement decisions.
///
/// The engine calls the methods in pipeline order (see the module
/// docs); implementations hold only scheme bookkeeping (ages, queues,
/// estimators) — trees, message assembly, parallelism, and DEK state
/// live in [`RekeyEngine`].
pub trait PlacementPolicy {
    /// Short human-readable scheme name for reports.
    fn scheme_name(&self) -> &'static str;

    /// Routes one departing member, removing any policy bookkeeping
    /// for it. Called once per leaver, in batch order, before any tree
    /// is touched.
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::UnknownMember`] if no tree or internal
    /// structure holds the member.
    fn route_leave(&mut self, member: MemberId, trees: &Trees) -> Result<Placement, KeyTreeError>;

    /// Members whose placement changes this interval, in the order
    /// their tree removals/joins should be batched. Departures have
    /// already been routed; this interval's joins have not been
    /// recorded yet. The default migrates nobody.
    fn plan_migrations(&mut self, epoch: u64, trees: &Trees) -> Vec<Migration> {
        let _ = (epoch, trees);
        Vec::new()
    }

    /// Routes one joining member. Pure routing — bookkeeping happens
    /// in [`PlacementPolicy::record_joins`] after the trees are
    /// planned.
    fn route_join(&self, join: &Join, trees: &Trees) -> Placement;

    /// Records this interval's joins in policy bookkeeping (join
    /// epochs, individual keys, queue slots). Runs after every tree
    /// planned its batch and before the DEK is refreshed.
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::DuplicateMember`] if a joiner is already held
    /// by a policy-internal structure.
    fn record_joins(&mut self, joins: &[Join], epoch: u64) -> Result<(), KeyTreeError> {
        let _ = (joins, epoch);
        Ok(())
    }

    /// Appends the entries distributing the freshly-rotated DEK. The
    /// default wraps it once under every occupied tree root, in tree
    /// order — the §3/§4 layering. Policies with internal members
    /// (queues) override this.
    fn dek_entries(
        &mut self,
        dek: &DekCtx,
        interval: &IntervalCtx,
        trees: &Trees,
        message: &mut RekeyMessage,
        rng: &mut dyn RngCore,
    ) {
        let _ = interval;
        for server in trees.iter() {
            if server.member_count() > 0 {
                message.entries.push(dek.wrap_tree_root(server, rng));
            }
        }
    }

    /// Number of members held in policy-internal structures (outside
    /// every tree). Default: none.
    fn internal_member_count(&self) -> usize {
        0
    }

    /// Whether a policy-internal structure holds `member`.
    fn internal_contains(&self, member: MemberId) -> bool {
        let _ = member;
        false
    }

    /// Appends the members held in policy-internal structures, in
    /// deterministic order (they lead the DEK audience listing).
    fn internal_members(&self, out: &mut Vec<MemberId>) {
        let _ = out;
    }

    /// Audience of a policy-internal node (e.g. a queue slot), or
    /// `None` if the node is not policy-internal.
    fn internal_members_under(&self, node: NodeId) -> Option<Vec<MemberId>> {
        let _ = node;
        None
    }

    /// Serializes the policy's bookkeeping (ages, keys, queues,
    /// estimators) onto `buf` for crash recovery. Configuration that
    /// the constructor re-derives (periods, boundaries) is *not*
    /// serialized. The default writes nothing — correct for stateless
    /// policies; stateful policies must override this together with
    /// [`PlacementPolicy::load_policy_state`].
    fn save_policy_state(&self, buf: &mut Vec<u8>) {
        let _ = buf;
    }

    /// Restores bookkeeping serialized by
    /// [`PlacementPolicy::save_policy_state`], consuming exactly the
    /// bytes it wrote from `buf`. Returns `None` if they do not parse.
    fn load_policy_state(&mut self, buf: &mut &[u8]) -> Option<()> {
        let _ = buf;
        Some(())
    }
}

/// One named tree owned by the engine.
#[derive(Debug, Clone)]
struct TreeSlot {
    /// `rekey.tree.<name>` — leaked once at registration so obs spans
    /// (which require `&'static str`) can carry the tree name.
    span_name: &'static str,
    server: LkhServer,
}

/// The shared epoch pipeline: a set of named LKH trees, an optional
/// DEK layered above their roots, and a [`PlacementPolicy`] deciding
/// who lives where.
///
/// The concrete schemes are type aliases over this engine (e.g.
/// [`crate::partition::TtManager`]); all of them implement
/// [`GroupKeyManager`] through the single blanket `impl` below, and
/// all inherit the engine's guarantees: byte-identical output at
/// every worker count, deterministic message order, per-tree obs
/// spans.
#[derive(Debug, Clone)]
pub struct RekeyEngine<P> {
    policy: P,
    trees: Vec<TreeSlot>,
    dek: Option<DekState>,
    epoch: u64,
    parallelism: usize,
}

impl<P: PlacementPolicy> RekeyEngine<P> {
    /// Creates an engine over `trees` (name + server pairs, in tree
    /// order). `dek_namespace` layers a group DEK above the tree
    /// roots; `None` means the root of the first (sole) tree *is* the
    /// group key — the one-tree baseline.
    ///
    /// Named `with_trees` (not `new`) so the concrete manager aliases
    /// can offer their own `new` constructors without colliding.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty.
    pub fn with_trees(
        policy: P,
        trees: Vec<(&str, LkhServer)>,
        dek_namespace: Option<u32>,
    ) -> Self {
        assert!(!trees.is_empty(), "an engine needs at least one tree");
        let trees = trees
            .into_iter()
            .map(|(name, server)| TreeSlot {
                // One-time leak per tree registration: obs span names
                // must be 'static, and engines live for the process.
                span_name: Box::leak(format!("rekey.tree.{name}").into_boxed_str()),
                server,
            })
            .collect();
        RekeyEngine {
            policy,
            trees,
            dek: dek_namespace.map(DekState::new),
            epoch: 0,
            parallelism: 1,
        }
    }

    /// The engine's policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the engine's policy (feedback hooks).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The server of tree `index`, in registration order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn tree(&self, index: usize) -> &LkhServer {
        &self.trees[index].server
    }

    /// Number of trees the engine owns.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Engine epoch: number of intervals processed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Routes this interval's leaves, migrations, and joins into
    /// per-tree batches (phases 1–3 of the pipeline). Returns
    /// per-tree join and leave lists plus the migration count.
    fn route_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
    ) -> Result<(Vec<TreeBatchJoins>, Vec<TreeBatchLeaves>, usize), KeyTreeError> {
        let mut tree_joins: Vec<Vec<(MemberId, Key)>> = vec![Vec::new(); self.trees.len()];
        let mut tree_leaves: Vec<Vec<MemberId>> = vec![Vec::new(); self.trees.len()];
        let trees = Trees { slots: &self.trees };
        for &member in leaves {
            if let Placement::Tree(i) = self.policy.route_leave(member, &trees)? {
                tree_leaves[i].push(member);
            }
        }
        let migrations = self.policy.plan_migrations(self.epoch, &trees);
        for migration in &migrations {
            if let Some(from) = migration.from {
                tree_leaves[from].push(migration.member);
            }
            tree_joins[migration.to].push((migration.member, migration.individual_key.clone()));
        }
        for join in joins {
            if let Placement::Tree(i) = self.policy.route_join(join, &trees) {
                tree_joins[i].push((join.member, join.individual_key.clone()));
            }
        }
        Ok((tree_joins, tree_leaves, migrations.len()))
    }

    /// Executes every tree's planned batch (phase 6). When the
    /// combined batch is large enough and more than one tree has work,
    /// trees execute concurrently on scoped threads; execution draws
    /// no randomness, so the output is byte-identical either way.
    fn execute_all(&mut self, planned: Vec<PlannedBatch>) -> Vec<BatchOutcome> {
        let busy = self
            .trees
            .iter()
            .filter(|slot| slot.server.planned_encryptions() > 0)
            .count();
        let total: usize = self
            .trees
            .iter()
            .map(|slot| slot.server.planned_encryptions())
            .sum();
        if self.parallelism > 1 && busy >= 2 && total >= CROSS_TREE_MIN_JOBS {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .trees
                    .iter_mut()
                    .zip(planned)
                    .map(|(slot, plan)| {
                        scope.spawn(move || {
                            let _span = rekey_obs::span!(slot.span_name);
                            slot.server.execute_planned(plan)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("tree execution thread"))
                    .collect()
            })
        } else {
            self.trees
                .iter_mut()
                .zip(planned)
                .map(|(slot, plan)| {
                    let _span = rekey_obs::span!(slot.span_name);
                    slot.server.execute_planned(plan)
                })
                .collect()
        }
    }
}

impl<P: PlacementPolicy> GroupKeyManager for RekeyEngine<P> {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        mut rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        self.epoch += 1;
        let _batch_span = rekey_obs::span!("rekey.batch");

        // Phases 1–3: routing.
        let (tree_joins, tree_leaves, migrations) = self.route_interval(joins, leaves)?;

        // Phase 4: plan every tree sequentially against the caller's
        // RNG — tree order fixes the draw order, which fixes every
        // output byte. Empty batches still run (tree epochs advance in
        // lockstep) but draw nothing.
        let mut planned = Vec::with_capacity(self.trees.len());
        for (slot, (joins_in, leaves_out)) in self
            .trees
            .iter_mut()
            .zip(tree_joins.iter().zip(&tree_leaves))
        {
            let _span = rekey_obs::span!(slot.span_name);
            planned.push(slot.server.plan_batch(joins_in, leaves_out, &mut rng)?);
        }

        // Phase 5: policy bookkeeping for this interval's joins.
        self.policy.record_joins(joins, self.epoch)?;

        // Phase 6: execute — pure, parallel across trees.
        let outcomes = self.execute_all(planned);

        // Phase 7: merge in tree order.
        let mut message = RekeyMessage::new(self.epoch);
        for outcome in outcomes {
            message.merge(outcome.message);
        }

        // Phase 8: DEK rotation + distribution.
        if let Some(dek) = &mut self.dek {
            let (previous_key, previous_version) = dek.refresh(rng);
            let ctx = DekCtx {
                dek,
                previous_key,
                previous_version,
            };
            let interval = IntervalCtx {
                epoch: self.epoch,
                joins,
                had_departures: !leaves.is_empty(),
            };
            let trees = Trees { slots: &self.trees };
            self.policy
                .dek_entries(&ctx, &interval, &trees, &mut message, rng);
        }

        // Per-backend throughput counter: lets traces attribute this
        // interval's encryption work to the SIMD tier that ran it.
        rekey_obs::count(
            match rekey_crypto::simd::active() {
                rekey_crypto::simd::Backend::Scalar => "engine.encrypted_keys.scalar",
                rekey_crypto::simd::Backend::Sse2 => "engine.encrypted_keys.sse2",
                rekey_crypto::simd::Backend::Avx2 => "engine.encrypted_keys.avx2",
            },
            message.encrypted_key_count() as u64,
        );

        Ok(IntervalOutcome {
            stats: IntervalStats {
                joins: joins.len(),
                leaves: leaves.len(),
                migrations,
                encrypted_keys: message.encrypted_key_count(),
                message_bytes: message.byte_len(),
            },
            message,
        })
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
        for slot in &mut self.trees {
            slot.server.set_parallelism(workers);
        }
    }

    fn dek_node(&self) -> NodeId {
        match &self.dek {
            Some(dek) => dek.node,
            None => self.trees[0].server.root_node(),
        }
    }

    fn dek(&self) -> &Key {
        match &self.dek {
            Some(dek) => &dek.key,
            None => self.trees[0].server.root_key(),
        }
    }

    fn member_count(&self) -> usize {
        self.policy.internal_member_count()
            + self
                .trees
                .iter()
                .map(|slot| slot.server.member_count())
                .sum::<usize>()
    }

    fn contains(&self, member: MemberId) -> bool {
        self.policy.internal_contains(member)
            || self.trees.iter().any(|slot| slot.server.contains(member))
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        let mut out = Vec::new();
        self.members_under_into(node, &mut out);
        out
    }

    fn members_under_into(&self, node: NodeId, out: &mut Vec<MemberId>) {
        if let Some(dek) = &self.dek {
            if node == dek.node {
                // Whole-group audience: internal members first, then
                // the trees in tree order.
                self.policy.internal_members(out);
                for slot in &self.trees {
                    slot.server.members_under_into(slot.server.root_node(), out);
                }
                return;
            }
        }
        if let Some(members) = self.policy.internal_members_under(node) {
            out.extend(members);
            return;
        }
        for slot in &self.trees {
            if node.namespace() == slot.server.tree().namespace() {
                slot.server.members_under_into(node, out);
                return;
            }
        }
    }

    fn scheme_name(&self) -> &'static str {
        self.policy.scheme_name()
    }

    fn save_state(&self, buf: &mut Vec<u8>) -> Result<(), PersistError> {
        buf.push(ENGINE_WIRE_VERSION);
        let name = self.policy.scheme_name();
        put_u32(buf, name.len() as u32);
        buf.extend_from_slice(name.as_bytes());
        put_u64(buf, self.epoch);
        match &self.dek {
            Some(dek) => {
                buf.push(1);
                put_u64(buf, dek.node.0);
                buf.extend_from_slice(dek.key.as_bytes());
                put_u64(buf, dek.version);
            }
            None => buf.push(0),
        }
        put_u32(buf, self.trees.len() as u32);
        for slot in &self.trees {
            slot.server.encode_into(buf);
        }
        self.policy.save_policy_state(buf);
        Ok(())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let bad = |what: &'static str| PersistError::Codec { what };
        let mut buf = bytes;
        if get_u8(&mut buf).ok_or(bad("engine state"))? != ENGINE_WIRE_VERSION {
            return Err(bad("engine state version"));
        }
        let name_len = get_u32(&mut buf).ok_or(bad("scheme name"))? as usize;
        if buf.len() < name_len {
            return Err(bad("scheme name"));
        }
        let (name, rest) = buf.split_at(name_len);
        buf = rest;
        let expected = self.policy.scheme_name();
        if name != expected.as_bytes() {
            return Err(PersistError::SchemeMismatch {
                expected: expected.to_string(),
                found: String::from_utf8_lossy(name).into_owned(),
            });
        }
        let epoch = get_u64(&mut buf).ok_or(bad("engine epoch"))?;
        // The DEK layering is configuration; the blob must agree with
        // how this engine was built before its key material is taken.
        match get_u8(&mut buf).ok_or(bad("DEK flag"))? {
            0 if self.dek.is_none() => {}
            1 if self.dek.is_some() => {
                let node = NodeId(get_u64(&mut buf).ok_or(bad("DEK node"))?);
                let (key, rest) = buf.split_first_chunk::<32>().ok_or(bad("DEK key"))?;
                buf = rest;
                let version = get_u64(&mut buf).ok_or(bad("DEK version"))?;
                let dek = self.dek.as_mut().expect("checked above");
                if dek.node != node {
                    return Err(bad("DEK namespace"));
                }
                dek.key = Key::from_bytes(*key);
                dek.version = version;
            }
            _ => return Err(bad("DEK layering")),
        }
        let count = get_u32(&mut buf).ok_or(bad("tree count"))? as usize;
        if count != self.trees.len() {
            return Err(bad("tree count"));
        }
        for slot in &mut self.trees {
            let mut server = LkhServer::decode(&mut buf).ok_or(bad("tree"))?;
            server.set_parallelism(self.parallelism);
            slot.server = server;
        }
        self.policy
            .load_policy_state(&mut buf)
            .ok_or(bad("policy state"))?;
        if !buf.is_empty() {
            return Err(bad("trailing bytes"));
        }
        self.epoch = epoch;
        Ok(())
    }
}
