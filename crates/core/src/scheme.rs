//! Unified scheme construction: one enum, one config, one factory.
//!
//! Before this module every driver (the CLI, the fuzz testkit, the
//! benches) carried its own `match`-arm factory from a scheme name to
//! a concrete manager constructor, and each kept a private list of
//! valid names. [`Scheme`] is the single source of truth: the enum
//! enumerates every scheme in the crate, [`Scheme::ALL`] drives help
//! text and sweeps, [`FromStr`] parses the command-line names, and
//! [`Scheme::build`] constructs the manager from a [`SchemeConfig`].
//!
//! # Example
//!
//! ```
//! use rekey_core::scheme::{Scheme, SchemeConfig};
//!
//! let scheme: Scheme = "qt".parse()?;
//! let config = SchemeConfig::new().degree(4).s_period(10);
//! let manager = scheme.build(&config);
//! assert_eq!(manager.member_count(), 0);
//! assert_eq!(scheme.name(), "qt");
//! # Ok::<(), rekey_core::scheme::SchemeParseError>(())
//! ```

use crate::adaptive::AdaptiveManager;
use crate::combined::CombinedManager;
use crate::loss_forest::LossForestManager;
use crate::one_tree::OneTreeManager;
use crate::partition::{PtManager, QtManager, TtManager};
use crate::GroupKeyManager;
use std::fmt;
use std::str::FromStr;

/// Every group-key management scheme this crate implements.
///
/// The variants mirror the paper's constructions: the single balanced
/// key tree baseline, the §3 two-partition schemes (TT/QT/PT), the §4
/// loss-homogenized forest, the §4.2 combination, and the §3.4
/// adaptive deployment loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Single balanced key tree — the unoptimized baseline.
    OneTree,
    /// Tree + tree two-partition scheme (§3.2).
    Tt,
    /// Queue + tree two-partition scheme (§3.2).
    Qt,
    /// Oracle-placement two-partition scheme (\[SMS00\]-style hints).
    Pt,
    /// Loss-homogenized key forest: one tree per loss class (§4).
    LossForest,
    /// Combined two-partition + loss forest (§4.2).
    Combined,
    /// Adaptive scheme selection from the observed mixture (§3.4).
    Adaptive,
}

impl Scheme {
    /// Every scheme, in the canonical reporting order. Drivers sweep
    /// this instead of maintaining their own lists.
    pub const ALL: [Scheme; 7] = [
        Scheme::OneTree,
        Scheme::Tt,
        Scheme::Qt,
        Scheme::Pt,
        Scheme::LossForest,
        Scheme::Combined,
        Scheme::Adaptive,
    ];

    /// The command-line name of the scheme (what [`FromStr`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::OneTree => "one",
            Scheme::Tt => "tt",
            Scheme::Qt => "qt",
            Scheme::Pt => "pt",
            Scheme::LossForest => "forest",
            Scheme::Combined => "combined",
            Scheme::Adaptive => "adaptive",
        }
    }

    /// Constructs the manager for this scheme from `config`.
    ///
    /// Out-of-range config values are clamped to the nearest valid
    /// value (degree at least 2, S-period at least 1) so a scheme can
    /// always be built.
    pub fn build(self, config: &SchemeConfig) -> Box<dyn GroupKeyManager> {
        let degree = config.degree.max(2);
        let k = config.s_period.max(1);
        match self {
            Scheme::OneTree => Box::new(OneTreeManager::new(degree)),
            Scheme::Tt => Box::new(TtManager::new(degree, k)),
            Scheme::Qt => Box::new(QtManager::new(degree, k)),
            Scheme::Pt => Box::new(PtManager::new(degree)),
            Scheme::LossForest => Box::new(LossForestManager::two_trees(degree)),
            Scheme::Combined => Box::new(CombinedManager::two_loss_classes(degree, k)),
            Scheme::Adaptive => Box::new(AdaptiveManager::paper_default(degree)),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scheme name that did not parse. The error message lists every
/// valid name, derived from [`Scheme::ALL`] — there is no
/// hand-maintained list to fall out of sync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeParseError {
    input: String,
}

impl SchemeParseError {
    /// The rejected input.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for SchemeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scheme {:?} (valid schemes: ", self.input)?;
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(scheme.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for SchemeParseError {}

impl FromStr for Scheme {
    type Err = SchemeParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::ALL
            .into_iter()
            .find(|scheme| scheme.name() == s)
            .ok_or_else(|| SchemeParseError {
                input: s.to_string(),
            })
    }
}

/// Construction parameters shared by every scheme. Built fluently;
/// fields a scheme does not use are ignored (the one-tree baseline has
/// no S-period).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeConfig {
    degree: usize,
    s_period: u64,
}

impl SchemeConfig {
    /// The paper's defaults: degree-4 trees, S-period of 10 intervals.
    pub fn new() -> Self {
        SchemeConfig {
            degree: 4,
            s_period: 10,
        }
    }

    /// Sets the key-tree degree (clamped to at least 2 at build time).
    pub fn degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Sets the S-period `k` in rekey intervals for the partitioned
    /// schemes (clamped to at least 1 at build time).
    pub fn s_period(mut self, k: u64) -> Self {
        self.s_period = k;
        self
    }

    /// The configured degree.
    pub fn degree_value(&self) -> usize {
        self.degree
    }

    /// The configured S-period.
    pub fn s_period_value(&self) -> u64 {
        self.s_period
    }
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_roundtrips() {
        for scheme in Scheme::ALL {
            assert_eq!(scheme.name().parse::<Scheme>(), Ok(scheme));
            assert_eq!(scheme.to_string(), scheme.name());
        }
    }

    #[test]
    fn parse_error_lists_all_variants() {
        let err = "lkh++".parse::<Scheme>().unwrap_err();
        let message = err.to_string();
        assert!(message.contains("lkh++"));
        for scheme in Scheme::ALL {
            assert!(
                message.contains(scheme.name()),
                "error message {message:?} misses {}",
                scheme.name()
            );
        }
        assert_eq!(err.input(), "lkh++");
    }

    #[test]
    fn build_constructs_every_scheme() {
        let config = SchemeConfig::new().degree(3).s_period(5);
        for scheme in Scheme::ALL {
            let manager = scheme.build(&config);
            assert_eq!(manager.member_count(), 0);
            assert!(!manager.scheme_name().is_empty());
        }
    }

    #[test]
    fn degenerate_config_is_clamped() {
        let config = SchemeConfig::new().degree(0).s_period(0);
        for scheme in Scheme::ALL {
            // Must not panic: the degenerate values are clamped.
            let _ = scheme.build(&config);
        }
    }
}
