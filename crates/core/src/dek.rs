//! Group data-encryption key (DEK) state shared by the managers.
//!
//! Multi-tree managers keep the DEK *above* their partition/forest
//! roots: every interval the DEK is refreshed and wrapped once under
//! each occupied subtree root (plus, for queue partitions, once per
//! queued member).

use rand::RngCore;
use rekey_crypto::{keywrap, Key};
use rekey_keytree::message::RekeyEntry;
use rekey_keytree::{MemberId, NodeId};

/// The DEK node id, its current key, and version.
#[derive(Debug, Clone)]
pub(crate) struct DekState {
    pub node: NodeId,
    pub key: Key,
    pub version: u64,
}

impl DekState {
    /// Creates the DEK in `namespace` with a placeholder key (replaced
    /// on the first interval).
    pub fn new(namespace: u32) -> Self {
        DekState {
            node: NodeId::from_parts(namespace, 0),
            key: Key::from_bytes([0; 32]),
            version: 0,
        }
    }

    /// Installs a fresh DEK, returning the previous key and version
    /// (for join-only intervals that re-wrap under the old DEK).
    pub fn refresh(&mut self, mut rng: &mut dyn RngCore) -> (Key, u64) {
        let old = (self.key.clone(), self.version);
        self.key = Key::generate(&mut rng);
        self.version += 1;
        old
    }

    /// Entry wrapping the current DEK under an arbitrary key.
    /// `recipient` is set for entries addressed to one member's
    /// individual key.
    #[allow(clippy::too_many_arguments)]
    pub fn wrap_under(
        &self,
        under: NodeId,
        under_version: u64,
        under_key: &Key,
        under_is_leaf: bool,
        recipient: Option<MemberId>,
        audience: u32,
        mut rng: &mut dyn RngCore,
    ) -> RekeyEntry {
        RekeyEntry {
            target: self.node,
            target_version: self.version,
            under,
            under_version,
            under_is_leaf,
            recipient,
            audience,
            target_depth: 0,
            wrapped: keywrap::wrap(under_key, &self.key, &mut rng),
        }
    }
}
