//! Property-based tests for the group-key managers: liveness and
//! secrecy hold for every scheme under arbitrary churn scripts and
//! parameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::loss_forest::LossForestManager;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{PtManager, QtManager, TtManager};
use rekey_core::{DurationClass, GroupKeyManager, Join};
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::MemberId;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
enum Scheme {
    One,
    Tt(u64),
    Qt(u64),
    Pt,
    Forest,
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::One),
        (1u64..6).prop_map(Scheme::Tt),
        (1u64..6).prop_map(Scheme::Qt),
        Just(Scheme::Pt),
        Just(Scheme::Forest),
    ]
}

fn build(scheme: Scheme, degree: usize) -> Box<dyn GroupKeyManager> {
    match scheme {
        Scheme::One => Box::new(OneTreeManager::new(degree)),
        Scheme::Tt(k) => Box::new(TtManager::new(degree, k)),
        Scheme::Qt(k) => Box::new(QtManager::new(degree, k)),
        Scheme::Pt => Box::new(PtManager::new(degree)),
        Scheme::Forest => Box::new(LossForestManager::two_trees(degree)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under an arbitrary interval script — per interval up to 4 joins
    /// and up to 3 leaves — every present member can always produce
    /// the DEK and no departed member ever can, for every scheme.
    #[test]
    fn any_scheme_stays_secret_and_live(
        scheme in scheme_strategy(),
        degree in 2usize..5,
        script in proptest::collection::vec((0usize..5, 0usize..4), 1..14),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mgr = build(scheme, degree);
        let mut states: BTreeMap<MemberId, GroupMember> = BTreeMap::new();
        let mut departed: Vec<MemberId> = Vec::new();
        let mut next_id = 0u64;

        for (joins_n, leaves_n) in script {
            let joins: Vec<Join> = (0..joins_n)
                .map(|i| {
                    let id = MemberId(next_id);
                    next_id += 1;
                    let ik = Key::generate(&mut rng);
                    states.insert(id, GroupMember::new(id, ik.clone()));
                    let mut j = Join::new(id, ik);
                    if i % 2 == 0 {
                        j = j.with_class(DurationClass::Short).with_loss_rate(0.2);
                    } else {
                        j = j.with_class(DurationClass::Long).with_loss_rate(0.01);
                    }
                    j
                })
                .collect();
            let leaves: Vec<MemberId> = states
                .keys()
                .filter(|id| mgr.contains(**id))
                .take(leaves_n)
                .copied()
                .collect();
            let out = mgr.process_interval(&joins, &leaves, &mut rng).unwrap();
            departed.extend(&leaves);

            for s in states.values_mut() {
                let _ = s.process(&out.message);
            }
            for (id, s) in &states {
                if departed.contains(id) {
                    prop_assert_ne!(
                        s.key_for(mgr.dek_node()), Some(mgr.dek()),
                        "departed {} holds DEK under {:?}", id, scheme);
                } else if mgr.contains(*id) {
                    prop_assert_eq!(
                        s.key_for(mgr.dek_node()), Some(mgr.dek()),
                        "member {} lost DEK under {:?}", id, scheme);
                }
            }
        }
        prop_assert_eq!(
            mgr.member_count(),
            states.len() - departed.len(),
            "population drift under {:?}", scheme);
    }

    /// The DEK changes every interval (a recorded DEK never reappears).
    #[test]
    fn dek_never_repeats(scheme in scheme_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mgr = build(scheme, 3);
        let mut seen: Vec<Key> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..8 {
            let joins: Vec<Join> = (0..2)
                .map(|_| {
                    let id = MemberId(next_id);
                    next_id += 1;
                    Join::new(id, Key::generate(&mut rng))
                })
                .collect();
            mgr.process_interval(&joins, &[], &mut rng).unwrap();
            let dek = mgr.dek().clone();
            prop_assert!(!seen.contains(&dek), "DEK reused under {:?}", scheme);
            seen.push(dek);
        }
    }
}
