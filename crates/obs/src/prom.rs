//! Prometheus text exposition: counters as `_total` counters,
//! duration histograms as real `histogram` families with cumulative
//! log₂ `_bucket{le=...}` lines, gauges as their last sampled value —
//! every family preceded by `# HELP` and `# TYPE` metadata so a real
//! Prometheus server scrapes it without complaint.
//!
//! [`validate`] re-parses an exposition document with no external
//! tooling and checks the format invariants (metadata present, names
//! in the Prometheus charset, buckets cumulative and `+Inf`-terminated,
//! `_count`/`_bucket` consistency). The CLI's `metrics-check` command
//! and the CI admin smoke both go through it.

use crate::collect::MetricsSnapshot;
use crate::ObsError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a dotted metric name (`crypto.chacha20_blocks`) to the
/// Prometheus charset (`crypto_chacha20_blocks`).
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// One-line `# HELP` text for a metric family. Known families get a
/// real description; everything else gets a generic (but present)
/// line, because scrapers treat a family without metadata as a format
/// smell.
fn help_for(family: &str) -> &'static str {
    match family {
        "net_fanout_bytes_total" => "Framed epoch bytes handed to the fan-out shards",
        "net_bytes_out_total" => "Payload bytes written to client sockets",
        "net_bytes_in_total" => "Payload bytes read from client sockets",
        "net_sessions_opened_total" => "Sessions accepted and authenticated",
        "net_sessions_closed_total" => "Sessions closed (EOF, error, Bye, or drain)",
        "net_sessions_rejected_total" => "Handshakes refused",
        "net_sessions_dropped_backpressure_total" => {
            "Sessions disconnected for overflowing their send queue"
        }
        "net_epochs_published_total" => "Rekey epochs published to the fan-out",
        "net_retransmit_frames_total" => "Epoch frames retransmitted from the NACK window",
        "net_acks_total" => "Client propagation acknowledgements received",
        "net_propagation_seconds" => {
            "End-to-end rekey propagation: fan-out stamp to client DEK install"
        }
        "net_fanout_seconds" => "Time to frame and enqueue one epoch on every shard",
        "net_session_handshake_seconds" => "Challenge/response handshake duration",
        "net_queue_depth" => "Deepest per-session send queue observed in a shard sweep",
        "net_sessions_live" => "Authenticated sessions currently connected",
        "rekey_encrypted_keys_total" => "Encrypted keys produced by the rekey engine",
        "obs_dropped_events_total" => "Raw events discarded after the retention cap",
        _ => "rekey runtime metric",
    }
}

fn write_meta(out: &mut String, family: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {family} {}", help_for(family));
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

/// Renders the snapshot in Prometheus text exposition format.
pub(crate) fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for (name, value) in &snapshot.counters {
        let family = format!("{}_total", sanitize(name));
        write_meta(&mut out, &family, "counter");
        let _ = writeln!(out, "{family} {value}");
    }

    for (name, hist) in &snapshot.hists {
        if hist.count() == 0 {
            continue;
        }
        let family = format!("{}_seconds", sanitize(name));
        write_meta(&mut out, &family, "histogram");
        // Cumulative log₂ buckets over the occupied range. Bucket i of
        // the histogram holds values < 2^i ns, so `le = 2^i / 1e9` s.
        let (counts, lowest, highest) = hist.bucket_counts();
        let mut cumulative = 0u64;
        for (i, &n) in counts.iter().enumerate().take(highest + 1).skip(lowest) {
            cumulative += n;
            let le = (1u128 << i) as f64 / 1e9;
            let _ = writeln!(out, "{family}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{family}_sum {:.9}", hist.sum() as f64 / 1e9);
        let _ = writeln!(out, "{family}_count {}", hist.count());
    }

    // Gauge series: export the most recent sample of each name.
    let mut last: BTreeMap<&str, f64> = BTreeMap::new();
    for sample in &snapshot.samples {
        last.insert(sample.name, sample.value);
    }
    for (name, value) in last {
        let family = sanitize(name);
        write_meta(&mut out, &family, "gauge");
        let _ = writeln!(out, "{family} {value}");
    }

    if snapshot.dropped_spans > 0 || snapshot.dropped_samples > 0 {
        write_meta(&mut out, "obs_dropped_events_total", "counter");
        let _ = writeln!(
            out,
            "obs_dropped_events_total {}",
            snapshot.dropped_spans + snapshot.dropped_samples
        );
    }
    out
}

/// What [`validate`] found in a well-formed exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromSummary {
    /// Counter families and their values.
    pub counters: BTreeMap<String, f64>,
    /// Gauge families and their values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram families and their `_count` values.
    pub histograms: BTreeMap<String, u64>,
    /// Total sample lines in the document.
    pub samples: usize,
}

fn metrics_err(line: usize, detail: impl Into<String>) -> ObsError {
    ObsError::Metrics {
        line,
        detail: detail.into(),
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The histogram family a series name belongs to, if it is a
/// histogram component (`x_bucket` → `x`, `x_sum` → `x`, …).
fn strip_suffix<'a>(series: &'a str, suffix: &str) -> Option<&'a str> {
    series.strip_suffix(suffix).filter(|f| !f.is_empty())
}

/// Validates Prometheus text exposition format using only this crate.
///
/// Checked invariants:
/// - every sample line parses as `name{labels} value`,
/// - every metric name is in the Prometheus charset,
/// - every family has `# TYPE` (and `# HELP`) metadata *before* its
///   first sample,
/// - counter family names end in `_total`,
/// - histogram `_bucket` series are cumulative, non-decreasing, end in
///   an `le="+Inf"` bucket, and agree with `_count`.
///
/// # Errors
///
/// [`ObsError::Metrics`] naming the offending line (1-based).
pub fn validate(text: &str) -> Result<PromSummary, ObsError> {
    #[derive(Default)]
    struct HistState {
        buckets: Vec<(f64, f64)>, // (le, cumulative)
        count: Option<f64>,
        has_inf: bool,
    }

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeMap<String, bool> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();
    let mut summary = PromSummary::default();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# ") {
            let mut parts = meta.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let family = parts.next().unwrap_or("");
            match keyword {
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !valid_name(family) {
                        return Err(metrics_err(line_no, format!("bad family name {family:?}")));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(metrics_err(line_no, format!("unknown type {kind:?}")));
                    }
                    if types.insert(family.to_string(), kind.to_string()).is_some() {
                        return Err(metrics_err(line_no, format!("duplicate TYPE for {family}")));
                    }
                }
                "HELP" => {
                    if parts.next().is_none() {
                        return Err(metrics_err(line_no, format!("empty HELP for {family}")));
                    }
                    helps.insert(family.to_string(), true);
                }
                _ => {} // plain comment
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment without metadata keyword
        }

        // Sample line: name[{labels}] value
        let (series, labels, value) = {
            let (name_part, rest) = match line.find('{') {
                Some(brace) => {
                    let close = line[brace..]
                        .find('}')
                        .map(|c| brace + c)
                        .ok_or_else(|| metrics_err(line_no, "unterminated label set"))?;
                    (&line[..brace], {
                        let labels = &line[brace + 1..close];
                        let value = line[close + 1..].trim();
                        (Some(labels), value)
                    })
                }
                None => {
                    let mut split = line.splitn(2, ' ');
                    let name = split.next().unwrap_or("");
                    (name, (None, split.next().unwrap_or("").trim()))
                }
            };
            (name_part, rest.0, rest.1)
        };
        if !valid_name(series) {
            return Err(metrics_err(line_no, format!("bad metric name {series:?}")));
        }
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            v => v
                .split_whitespace()
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|_| metrics_err(line_no, format!("bad sample value {value:?}")))?,
        };
        summary.samples += 1;

        // Resolve the family this series belongs to and its type.
        let (family, kind) = if let Some(kind) = types.get(series) {
            (series.to_string(), kind.clone())
        } else {
            let hist_family = [
                strip_suffix(series, "_bucket"),
                strip_suffix(series, "_sum"),
            ]
            .into_iter()
            .flatten()
            .chain(strip_suffix(series, "_count"))
            .find(|f| types.get(*f).map(String::as_str) == Some("histogram"));
            match hist_family {
                Some(f) => (f.to_string(), "histogram".to_string()),
                None => {
                    return Err(metrics_err(
                        line_no,
                        format!("sample {series:?} has no preceding # TYPE"),
                    ))
                }
            }
        };
        if !helps.contains_key(&family) {
            return Err(metrics_err(
                line_no,
                format!("family {family:?} has no # HELP"),
            ));
        }

        match kind.as_str() {
            "counter" => {
                if !family.ends_with("_total") {
                    return Err(metrics_err(
                        line_no,
                        format!("counter {family:?} does not end in _total"),
                    ));
                }
                summary.counters.insert(family, value);
            }
            "gauge" => {
                summary.gauges.insert(family, value);
            }
            "histogram" => {
                let state = hists.entry(family).or_default();
                if series.ends_with("_bucket") {
                    let labels = labels.unwrap_or("");
                    let le = labels
                        .split(',')
                        .find_map(|l| l.trim().strip_prefix("le=").map(|v| v.trim_matches('"')))
                        .ok_or_else(|| metrics_err(line_no, "bucket without le label"))?;
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse()
                            .map_err(|_| metrics_err(line_no, format!("bad le value {le:?}")))?
                    };
                    if let Some(&(prev_le, prev_n)) = state.buckets.last() {
                        if le <= prev_le {
                            return Err(metrics_err(line_no, "bucket le not increasing"));
                        }
                        if value < prev_n {
                            return Err(metrics_err(line_no, "bucket counts not cumulative"));
                        }
                    }
                    state.has_inf |= le.is_infinite();
                    state.buckets.push((le, value));
                } else if series.ends_with("_count") {
                    state.count = Some(value);
                }
            }
            _ => {}
        }
    }

    for (family, state) in hists {
        if !state.has_inf {
            return Err(metrics_err(
                0,
                format!("histogram {family:?} has no +Inf bucket"),
            ));
        }
        let count = state
            .count
            .ok_or_else(|| metrics_err(0, format!("histogram {family:?} has no _count")))?;
        let inf = state.buckets.last().map(|&(_, n)| n).unwrap_or(0.0);
        if (inf - count).abs() > f64::EPSILON {
            return Err(metrics_err(
                0,
                format!("histogram {family:?}: +Inf bucket {inf} != count {count}"),
            ));
        }
        summary.histograms.insert(family, count as u64);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Recorder};

    #[test]
    fn counters_and_histograms_render_with_metadata() {
        let c = Collector::new();
        c.count("crypto.keywrap.wrap", 7);
        c.time("rekey.plan", 1_000_000);
        c.time("rekey.plan", 3_000_000);
        c.sample("sim.message_bytes", 10, 1234.0);
        c.sample("sim.message_bytes", 20, 5678.0);
        let text = c.prometheus_text();
        assert!(text.contains("# TYPE crypto_keywrap_wrap_total counter"));
        assert!(text.contains("# HELP crypto_keywrap_wrap_total "));
        assert!(text.contains("crypto_keywrap_wrap_total 7"));
        assert!(text.contains("# TYPE rekey_plan_seconds histogram"));
        assert!(text.contains("rekey_plan_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rekey_plan_seconds_count 2"));
        assert!(text.contains("rekey_plan_seconds_sum 0.004000000"));
        // Gauge exports the last sample only.
        assert!(text.contains("# TYPE sim_message_bytes gauge"));
        assert!(text.contains("sim_message_bytes 5678"));
        assert!(!text.contains(" 1234"));
    }

    #[test]
    fn rendered_text_passes_own_validator() {
        let c = Collector::new();
        c.count("net.fanout.bytes", 4096);
        c.count("some.dotted-name/odd", 1);
        c.time("net.propagation", 50_000);
        c.time("net.propagation", 900_000);
        c.time("net.propagation", 12_000_000);
        c.sample("net.queue.depth", 5, 3.0);
        let text = c.prometheus_text();
        let summary = validate(&text).expect("own output validates");
        assert_eq!(summary.counters["net_fanout_bytes_total"], 4096.0);
        assert_eq!(summary.histograms["net_propagation_seconds"], 3);
        assert_eq!(summary.gauges["net_queue_depth"], 3.0);
        assert!(summary.samples > 5);
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let c = Collector::new();
        assert!(c.prometheus_text().is_empty());
        assert_eq!(validate("").unwrap(), PromSummary::default());
    }

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("0weird"), "_0weird");
    }

    #[test]
    fn buckets_are_cumulative_and_cover_the_range() {
        let c = Collector::new();
        for v in [100u64, 100, 200, 1_000_000] {
            c.time("x", v);
        }
        let text = c.prometheus_text();
        // 100 lands in bucket le=2^7/1e9, 200 in 2^8, 1e6 in 2^20.
        assert!(text.contains("x_seconds_bucket{le=\"0.000000128\"} 2"));
        assert!(text.contains("x_seconds_bucket{le=\"0.000000256\"} 3"));
        assert!(text.contains("x_seconds_bucket{le=\"0.001048576\"} 4"));
        assert!(text.contains("x_seconds_bucket{le=\"+Inf\"} 4"));
        validate(&text).expect("cumulative buckets validate");
    }

    #[test]
    fn validator_rejects_format_violations() {
        // Sample without TYPE metadata.
        assert!(validate("lonely_metric 3\n").is_err());
        // TYPE but no HELP.
        assert!(validate("# TYPE x_total counter\nx_total 1\n").is_err());
        // Counter not ending in _total.
        let doc = "# HELP x x\n# TYPE x counter\nx 1\n";
        assert!(validate(doc).is_err());
        // Non-cumulative buckets.
        let doc = "# HELP h h\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n";
        assert!(validate(doc).is_err());
        // Histogram without +Inf.
        let doc = "# HELP h h\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n";
        assert!(validate(doc).is_err());
        // Bad metric name.
        assert!(validate("# HELP 9bad x\n# TYPE 9bad gauge\n9bad 1\n").is_err());
        // Unparseable value.
        let doc = "# HELP g g\n# TYPE g gauge\ng banana\n";
        assert!(validate(doc).is_err());
    }

    #[test]
    fn validator_accepts_inf_and_labels() {
        let doc = "# HELP h h\n# TYPE h histogram\n\
                   h_bucket{le=\"0.001\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
                   h_sum 0.5\nh_count 2\n\
                   # HELP up u\n# TYPE up gauge\nup 1\n";
        let summary = validate(doc).unwrap();
        assert_eq!(summary.histograms["h"], 2);
        assert_eq!(summary.gauges["up"], 1.0);
    }
}
