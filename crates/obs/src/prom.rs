//! Prometheus-style text export: counters as `_total` counters,
//! duration histograms as summaries with log₂-approximate quantiles,
//! and gauge series as their last sampled value.

use crate::collect::MetricsSnapshot;
use std::fmt::Write as _;

/// Maps a dotted metric name (`crypto.chacha20_blocks`) to the
/// Prometheus charset (`crypto_chacha20_blocks`).
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders the snapshot in Prometheus text exposition format.
pub(crate) fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for (name, value) in &snapshot.counters {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric}_total counter");
        let _ = writeln!(out, "{metric}_total {value}");
    }

    for (name, hist) in &snapshot.hists {
        if hist.count() == 0 {
            continue;
        }
        let metric = format!("{}_seconds", sanitize(name));
        let _ = writeln!(out, "# TYPE {metric} summary");
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "{metric}{{quantile=\"{label}\"}} {:.9}",
                hist.quantile(q) as f64 / 1e9
            );
        }
        let _ = writeln!(out, "{metric}_sum {:.9}", hist.sum() as f64 / 1e9);
        let _ = writeln!(out, "{metric}_count {}", hist.count());
        let _ = writeln!(out, "{metric}_max {:.9}", hist.max() as f64 / 1e9);
    }

    // Gauge series: export the most recent sample of each name.
    let mut last: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for sample in &snapshot.samples {
        last.insert(sample.name, sample.value);
    }
    for (name, value) in last {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }

    if snapshot.dropped_spans > 0 || snapshot.dropped_samples > 0 {
        let _ = writeln!(out, "# TYPE obs_dropped_events_total counter");
        let _ = writeln!(
            out,
            "obs_dropped_events_total {}",
            snapshot.dropped_spans + snapshot.dropped_samples
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Recorder};

    #[test]
    fn counters_and_histograms_render() {
        let c = Collector::new();
        c.count("crypto.keywrap.wrap", 7);
        c.time("rekey.plan", 1_000_000);
        c.time("rekey.plan", 3_000_000);
        c.sample("sim.message_bytes", 10, 1234.0);
        c.sample("sim.message_bytes", 20, 5678.0);
        let text = c.prometheus_text();
        assert!(text.contains("crypto_keywrap_wrap_total 7"));
        assert!(text.contains("# TYPE rekey_plan_seconds summary"));
        assert!(text.contains("rekey_plan_seconds_count 2"));
        assert!(text.contains("rekey_plan_seconds_sum 0.004000000"));
        assert!(text.contains("rekey_plan_seconds{quantile=\"0.5\"}"));
        // Gauge exports the last sample only.
        assert!(text.contains("sim_message_bytes 5678"));
        assert!(!text.contains("1234"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let c = Collector::new();
        assert!(c.prometheus_text().is_empty());
    }

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("0weird"), "_0weird");
    }
}
