//! The [`Recorder`] sink trait, the process-global recorder slot, and
//! the RAII [`SpanGuard`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A sink for observability events.
///
/// All methods take `&self`: implementations must be internally
/// synchronized, because spans and counters arrive concurrently from
/// the rekey engine's worker threads.
pub trait Recorder: Send + Sync {
    /// Records a completed wall-clock span on thread `tid`.
    fn span(&self, name: &'static str, start_ns: u64, dur_ns: u64, tid: u64);

    /// Adds `delta` to the monotonic counter `name`.
    fn count(&self, name: &'static str, delta: u64);

    /// Records one duration sample (nanoseconds) into the histogram
    /// `name` without emitting a trace span.
    fn time(&self, name: &'static str, dur_ns: u64);

    /// Records a timestamped gauge sample (a per-interval series point;
    /// exported as a Chrome counter track).
    fn sample(&self, name: &'static str, ts_ns: u64, value: f64);

    /// Total nanoseconds accumulated under span/timer `name`, if this
    /// recorder aggregates them (the default reports nothing).
    fn total_time_ns(&self, name: &str) -> u64 {
        let _ = name;
        0
    }
}

/// Fast-path switch: `true` iff a recorder is installed. Probes check
/// this before touching the `RwLock`, so disabled instrumentation costs
/// one relaxed load and a predictable branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global recorder. `RwLock` (not `OnceLock`) so tests and
/// back-to-back simulation runs can swap recorders.
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Whether a global recorder is currently installed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-global sink, replacing any
/// previous one.
pub fn install(recorder: Arc<dyn Recorder>) {
    *GLOBAL.write().expect("recorder lock poisoned") = Some(recorder);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes and returns the process-global recorder, if any.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    let mut slot = GLOBAL.write().expect("recorder lock poisoned");
    ENABLED.store(false, Ordering::Relaxed);
    slot.take()
}

/// Runs `f` against the installed recorder, if any.
#[inline]
fn with<F: FnOnce(&dyn Recorder)>(f: F) {
    if !enabled() {
        return;
    }
    if let Some(recorder) = GLOBAL.read().expect("recorder lock poisoned").as_deref() {
        f(recorder);
    }
}

/// Monotonic nanoseconds since the first observability event of the
/// process — the timestamp base of every exported trace.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A small dense id for the current thread (1, 2, 3, … in first-use
/// order). `std::thread::ThreadId` has no stable integer form, and
/// trace viewers want small integers per track.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Adds `delta` to counter `name` on the global recorder (no-op when
/// none is installed).
#[inline]
pub fn count(name: &'static str, delta: u64) {
    with(|r| r.count(name, delta));
}

/// Records a duration sample into histogram `name` on the global
/// recorder.
#[inline]
pub fn time_ns(name: &'static str, dur_ns: u64) {
    with(|r| r.time(name, dur_ns));
}

/// Records a gauge sample (timestamped now) on the global recorder.
#[inline]
pub fn sample(name: &'static str, value: f64) {
    with(|r| r.sample(name, now_ns(), value));
}

/// Total nanoseconds accumulated under `name` by the global recorder
/// (0 when none is installed or it does not aggregate).
pub fn total_time_ns(name: &str) -> u64 {
    let mut total = 0;
    with(|r| total = r.total_time_ns(name));
    total
}

/// RAII scoped timer created by [`crate::span!`]. Records a span (and
/// feeds the recorder's duration histogram) when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when no recorder was installed at construction — the
    /// guard is then fully inert.
    start: Option<Instant>,
    start_ns: u64,
}

impl SpanGuard {
    /// Starts a span named `name` if a global recorder is installed.
    #[inline]
    pub fn new(name: &'static str) -> Self {
        if enabled() {
            SpanGuard {
                name,
                start_ns: now_ns(),
                start: Some(Instant::now()),
            }
        } else {
            SpanGuard {
                name,
                start_ns: 0,
                start: None,
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_ns = start.elapsed().as_nanos() as u64;
            with(|r| r.span(self.name, self.start_ns, dur_ns, thread_id()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    /// Global-recorder tests share one process slot; serialize them.
    pub(crate) fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_are_inert() {
        let _g = global_lock();
        uninstall();
        assert!(!enabled());
        count("x", 1);
        time_ns("x", 1);
        sample("x", 1.0);
        let _s = crate::span!("x");
        assert_eq!(total_time_ns("x"), 0);
    }

    #[test]
    fn install_uninstall_roundtrip() {
        let _g = global_lock();
        let c = Arc::new(Collector::new());
        install(c.clone());
        assert!(enabled());
        count("roundtrip.counter", 2);
        count("roundtrip.counter", 3);
        {
            let _s = crate::span!("roundtrip.span");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        uninstall();
        assert!(!enabled());
        // Events after uninstall go nowhere.
        count("roundtrip.counter", 100);

        let snap = c.snapshot();
        assert_eq!(snap.counter("roundtrip.counter"), 5);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "roundtrip.span");
        assert!(snap.spans[0].dur_ns > 0);
        assert!(c.total_time_ns("roundtrip.span") >= snap.spans[0].dur_ns);
    }

    #[test]
    fn thread_ids_are_small_and_distinct() {
        let mine = thread_id();
        assert!(mine >= 1);
        assert_eq!(mine, thread_id(), "stable within a thread");
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, other);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
