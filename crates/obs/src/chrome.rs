//! Chrome `trace_event` JSON export.
//!
//! The emitted file is the "JSON Object Format" of the Trace Event
//! specification: a top-level object whose `traceEvents` array holds
//! duration events (`ph: "B"` / `"E"`, balanced and properly nested
//! per thread) and counter events (`ph: "C"`). Load it in
//! `chrome://tracing`, `about:tracing`, or <https://ui.perfetto.dev>.
//!
//! [`validate_trace`] re-parses an exported file with the crate's own
//! JSON parser and checks the structural invariants (used by the
//! integration tests and the CLI's `trace-check` command), so CI can
//! verify traces without external tooling.

use crate::collect::{MetricsSnapshot, SpanEvent};
use crate::json;
use crate::ObsError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Counter,
}

#[derive(Debug)]
struct TraceEvent {
    name: String,
    ph: Phase,
    ts_ns: u64,
    tid: u64,
    value: Option<f64>,
}

/// Expands spans into per-thread, properly nested begin/end pairs.
///
/// Spans arrive ordered by *completion*; within one thread RAII
/// guarantees proper nesting, so sorting by start time (ties: longer
/// span first, i.e. the enclosing one) and sweeping with a stack of
/// open end-times reproduces the original nesting exactly.
fn span_events(spans: &[SpanEvent]) -> Vec<TraceEvent> {
    let mut by_tid: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for span in spans {
        by_tid.entry(span.tid).or_default().push(span);
    }
    let mut events = Vec::with_capacity(spans.len() * 2);
    for (tid, mut list) in by_tid {
        list.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        // Stack of (name, end_ns) for currently open spans.
        let mut open: Vec<(&'static str, u64)> = Vec::new();
        for span in list {
            let end_ns = span.start_ns.saturating_add(span.dur_ns);
            while let Some(&(name, open_end)) = open.last() {
                if open_end <= span.start_ns {
                    events.push(TraceEvent {
                        name: name.to_string(),
                        ph: Phase::End,
                        ts_ns: open_end,
                        tid,
                        value: None,
                    });
                    open.pop();
                } else {
                    break;
                }
            }
            events.push(TraceEvent {
                name: span.name.to_string(),
                ph: Phase::Begin,
                ts_ns: span.start_ns,
                tid,
                value: None,
            });
            open.push((span.name, end_ns));
        }
        while let Some((name, end_ns)) = open.pop() {
            events.push(TraceEvent {
                name: name.to_string(),
                ph: Phase::End,
                ts_ns: end_ns,
                tid,
                value: None,
            });
        }
    }
    events
}

/// Renders the snapshot as Chrome trace JSON.
pub(crate) fn render(snapshot: &MetricsSnapshot) -> String {
    let mut events = span_events(&snapshot.spans);
    for sample in &snapshot.samples {
        events.push(TraceEvent {
            name: sample.name.to_string(),
            ph: Phase::Counter,
            ts_ns: sample.ts_ns,
            tid: 0,
            value: Some(sample.value),
        });
    }
    // Viewers expect the array roughly time-ordered; a stable sort
    // keeps each thread's B/E stream (already time-ordered) intact.
    events.sort_by_key(|e| e.ts_ns);

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\n  \"traceEvents\": [\n");
    for (i, event) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        let ts_us = event.ts_ns as f64 / 1000.0;
        match event.ph {
            Phase::Begin | Phase::End => {
                let ph = if event.ph == Phase::Begin { "B" } else { "E" };
                let _ = writeln!(
                    out,
                    "    {{\"name\": \"{}\", \"cat\": \"rekey\", \"ph\": \"{ph}\", \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {}}}{sep}",
                    escape(&event.name),
                    event.tid
                );
            }
            Phase::Counter => {
                let _ = writeln!(
                    out,
                    "    {{\"name\": \"{}\", \"cat\": \"rekey\", \"ph\": \"C\", \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": 0, \"args\": {{\"value\": {}}}}}{sep}",
                    escape(&event.name),
                    fmt_f64(event.value.unwrap_or(0.0))
                );
            }
        }
    }
    out.push_str("  ],\n");
    out.push_str("  \"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(
        out,
        "  \"otherData\": {{\"generator\": \"rekey-obs\", \"dropped_spans\": {}, \"dropped_samples\": {}}}",
        snapshot.dropped_spans, snapshot.dropped_samples
    );
    out.push_str("}\n");
    out
}

/// JSON numbers may not be NaN/Inf; clamp to 0 (gauges are finite in
/// practice).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// What [`validate_trace`] found in a trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `ph: "B"` events (equals the end-event count).
    pub begin_events: usize,
    /// `ph: "E"` events.
    pub end_events: usize,
    /// `ph: "C"` counter samples.
    pub counter_events: usize,
    /// Distinct span names seen.
    pub span_names: std::collections::BTreeSet<String>,
    /// Distinct counter-track names seen.
    pub counter_names: std::collections::BTreeSet<String>,
}

/// Parses `text` as Chrome trace JSON and verifies the invariants the
/// exporter guarantees: well-formed JSON, a `traceEvents` array whose
/// events carry `name`/`ph`/`ts`, begin/end events balanced and
/// properly nested per thread, and counter events carrying a numeric
/// `args.value`.
///
/// # Errors
///
/// Returns the first violation found as a typed [`ObsError`]:
/// [`ObsError::Json`] for syntax errors, [`ObsError::Document`] for
/// structural problems, [`ObsError::Event`] for a bad event, and
/// [`ObsError::UnbalancedSpan`] for a span left open at end of trace.
pub fn validate_trace(text: &str) -> Result<TraceSummary, ObsError> {
    let root = json::parse(text)?;
    let events = root
        .get("traceEvents")
        .ok_or_else(|| ObsError::Document("missing \"traceEvents\" key".into()))?
        .as_arr()
        .ok_or_else(|| ObsError::Document("\"traceEvents\" is not an array".into()))?;

    let mut summary = TraceSummary::default();
    // Per-(pid, tid) stacks of open span names.
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let bad = |detail: String| ObsError::Event { index: i, detail };
        let name = event
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| bad("missing string \"name\"".into()))?;
        let ph = event
            .get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| bad("missing string \"ph\"".into()))?;
        event
            .get("ts")
            .and_then(json::Value::as_num)
            .ok_or_else(|| bad("missing numeric \"ts\"".into()))?;
        let pid = event
            .get("pid")
            .and_then(json::Value::as_num)
            .unwrap_or(0.0) as u64;
        let tid = event
            .get("tid")
            .and_then(json::Value::as_num)
            .unwrap_or(0.0) as u64;
        match ph {
            "B" => {
                summary.begin_events += 1;
                summary.span_names.insert(name.to_string());
                stacks.entry((pid, tid)).or_default().push(name.to_string());
            }
            "E" => {
                summary.end_events += 1;
                let stack = stacks.entry((pid, tid)).or_default();
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(bad(format!(
                            "end of {name:?} while {open:?} is open on tid {tid}"
                        )));
                    }
                    None => {
                        return Err(bad(format!(
                            "end of {name:?} with no open span on tid {tid}"
                        )));
                    }
                }
            }
            "C" => {
                summary.counter_events += 1;
                summary.counter_names.insert(name.to_string());
                event
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(json::Value::as_num)
                    .ok_or_else(|| bad("counter without numeric args.value".into()))?;
            }
            other => return Err(bad(format!("unsupported phase {other:?}"))),
        }
    }
    for ((_, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(ObsError::UnbalancedSpan {
                name: open.clone(),
                tid: *tid,
            });
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Recorder};

    #[test]
    fn nested_spans_export_balanced() {
        let c = Collector::new();
        // Outer span [0, 1000], inner [100, 400], sibling [500, 900],
        // all on tid 1; a second thread runs [200, 300].
        c.span("inner", 100, 300, 1);
        c.span("sibling", 500, 400, 1);
        c.span("outer", 0, 1000, 1);
        c.span("worker", 200, 100, 2);
        c.sample("gauge", 650, 42.0);
        let json = c.chrome_trace_json();
        let summary = validate_trace(&json).expect("exported trace must validate");
        assert_eq!(summary.begin_events, 4);
        assert_eq!(summary.end_events, 4);
        assert_eq!(summary.counter_events, 1);
        assert!(summary.span_names.contains("outer"));
        assert!(summary.counter_names.contains("gauge"));
    }

    #[test]
    fn empty_collector_exports_valid_trace() {
        let c = Collector::new();
        let summary = validate_trace(&c.chrome_trace_json()).unwrap();
        assert_eq!(summary.begin_events, 0);
        assert_eq!(summary.counter_events, 0);
    }

    #[test]
    fn names_are_escaped() {
        let c = Collector::new();
        c.sample("weird\"name\\with\ttabs", 1, 1.0);
        let json = c.chrome_trace_json();
        validate_trace(&json).unwrap();
    }

    #[test]
    fn validator_rejects_unbalanced() {
        let text = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_trace(text)
            .unwrap_err()
            .to_string()
            .contains("never ends"));
    }

    #[test]
    fn validator_rejects_mismatched_nesting() {
        let text = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 2.0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 4.0, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_trace(text).is_err());
    }

    #[test]
    fn validator_rejects_stray_end_and_bad_counter() {
        let stray = r#"{"traceEvents": [
            {"name": "a", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate_trace(stray)
            .unwrap_err()
            .to_string()
            .contains("no open span"));
        let bad_counter = r#"{"traceEvents": [
            {"name": "g", "ph": "C", "ts": 1.0, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_trace(bad_counter)
            .unwrap_err()
            .to_string()
            .contains("args.value"));
    }

    #[test]
    fn validator_rejects_invalid_json() {
        assert!(validate_trace("{\"traceEvents\": [").is_err());
        assert!(validate_trace("[]")
            .unwrap_err()
            .to_string()
            .contains("traceEvents"));
    }

    #[test]
    fn spans_on_different_threads_do_not_interfere() {
        let c = Collector::new();
        // Overlapping in time but on different tids — legal.
        c.span("t1", 0, 500, 1);
        c.span("t2", 100, 600, 2);
        validate_trace(&c.chrome_trace_json()).unwrap();
    }
}
