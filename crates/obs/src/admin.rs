//! The live admin plane: a zero-dependency HTTP/1.0 responder serving
//! metrics, health, a JSON variable snapshot, and the flight recorder
//! — plus the equally dependency-free HTTP client the CLI's `top` and
//! `metrics-check` commands (and CI) use to poll it.
//!
//! Endpoints:
//!
//! | path         | payload                                            |
//! |--------------|----------------------------------------------------|
//! | `/metrics`   | Prometheus text exposition ([`crate::prom`])       |
//! | `/healthz`   | `200 ok` while live; `503 draining` during drain   |
//! | `/readyz`    | `200 ready` once serving; `503 not ready` before/after |
//! | `/vars`      | JSON snapshot: counters, gauges, histogram quantiles |
//! | `/flightrec` | flight-recorder dump as JSONL ([`crate::flight`])  |
//!
//! The responder is deliberately minimal: HTTP/1.0, `Connection:
//! close`, one short-lived thread, GET only. It is an *operational*
//! port (metrics scrapes, health probes, a `top` loop), not a web
//! server; anything beyond `GET <path>` gets a 4xx and a closed
//! socket.

use crate::collect::MetricsSnapshot;
use crate::flight::FlightRecorder;
use crate::{Collector, ObsError};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Liveness/readiness flags shared between the admin responder and
/// the daemon it reports on. The daemon flips them; `/healthz` and
/// `/readyz` read them.
#[derive(Debug, Default)]
pub struct HealthFlags {
    /// `false` once shutdown/drain has begun (`/healthz` → 503).
    pub live: AtomicBool,
    /// `true` while the daemon admits sessions (`/readyz` → 200).
    pub ready: AtomicBool,
}

impl HealthFlags {
    /// Flags starting live and ready.
    pub fn up() -> Arc<HealthFlags> {
        let flags = HealthFlags::default();
        flags.live.store(true, Ordering::SeqCst);
        flags.ready.store(true, Ordering::SeqCst);
        Arc::new(flags)
    }

    /// Marks the process as draining: unready and unhealthy.
    pub fn begin_drain(&self) {
        self.ready.store(false, Ordering::SeqCst);
        self.live.store(false, Ordering::SeqCst);
    }
}

/// Everything the admin responder reports on.
#[derive(Clone)]
pub struct AdminState {
    /// The live metrics registry served by `/metrics` and `/vars`.
    pub collector: Arc<Collector>,
    /// The flight recorder behind `/flightrec` (404 when absent).
    pub flight: Option<Arc<FlightRecorder>>,
    /// Health/readiness flags behind `/healthz` and `/readyz`.
    pub health: Arc<HealthFlags>,
}

/// The admin responder: owns the listener thread until shut down (or
/// dropped).
pub struct AdminServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds the admin port and starts answering requests.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, state: AdminState) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("rekey-admin".into())
                .spawn(move || serve_loop(listener, state, shutdown))?
        };
        Ok(AdminServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound admin address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the responder and joins its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(listener: TcpListener, state: AdminState, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Requests are tiny and answered inline; a slow or
                // malicious peer is bounded by the read deadline.
                let _ = answer(stream, &state);
            }
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads one request head (bounded), routes it, writes one response.
fn answer(mut stream: TcpStream, state: &AdminState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    let deadline = Instant::now() + Duration::from_secs(1);
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && !head.windows(2).any(|w| w == b"\n\n") {
        if head.len() > 8 * 1024 || Instant::now() >= deadline {
            return respond(&mut stream, 431, "text/plain", "request too large\n");
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = state.collector.prometheus_text();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            if state.health.live.load(Ordering::SeqCst) {
                respond(&mut stream, 200, "text/plain", "ok\n")
            } else {
                respond(&mut stream, 503, "text/plain", "draining\n")
            }
        }
        "/readyz" => {
            if state.health.ready.load(Ordering::SeqCst) {
                respond(&mut stream, 200, "text/plain", "ready\n")
            } else {
                respond(&mut stream, 503, "text/plain", "not ready\n")
            }
        }
        "/vars" => {
            let body = vars_json(&state.collector.snapshot(), &state.health);
            respond(&mut stream, 200, "application/json", &body)
        }
        "/flightrec" => match &state.flight {
            Some(flight) => respond(
                &mut stream,
                200,
                "application/x-ndjson",
                &flight.dump_jsonl(),
            ),
            None => respond(&mut stream, 404, "text/plain", "no flight recorder\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Renders the `/vars` JSON snapshot: health, counters, last-value
/// gauges, and per-histogram quantiles (in nanoseconds, pre-computed
/// so pollers need no histogram math).
pub fn vars_json(snapshot: &MetricsSnapshot, health: &HealthFlags) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"live\": {},\n  \"ready\": {},\n  \"uptime_ns\": {},",
        health.live.load(Ordering::SeqCst),
        health.ready.load(Ordering::SeqCst),
        crate::now_ns()
    );
    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{name}\": {value}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let mut last: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for sample in &snapshot.samples {
        last.insert(sample.name, sample.value);
    }
    for (i, (name, value)) in last.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{name}\": {value}");
    }
    out.push_str("\n  },\n  \"hists\": {");
    let mut first = true;
    for (name, hist) in &snapshot.hists {
        if hist.count() == 0 {
            continue;
        }
        let sep = if first { "" } else { "," };
        first = false;
        let _ = write!(
            out,
            "{sep}\n    \"{name}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            hist.count(),
            hist.sum(),
            hist.quantile(0.5),
            hist.quantile(0.9),
            hist.quantile(0.99),
            hist.max()
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// A parsed admin HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

/// Minimal HTTP GET against an admin endpoint — the "own HTTP client"
/// used by `rekey top`, `rekey metrics-check`, the integration tests,
/// and CI (no curl dependency).
///
/// # Errors
///
/// [`ObsError::Http`] on connect/read failures or an unparseable
/// response head. Non-2xx statuses are returned, not errors.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<HttpResponse, ObsError> {
    let http = |detail: String| ObsError::Http { detail };
    let mut stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| http(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| http(format!("socket setup: {e}")))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| http(format!("send request: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| http(format!("read response: {e}")))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or_else(|| http("response has no header/body separator".into()))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| http(format!("unparseable status line {:?}", head.lines().next())))?;
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightKind;
    use crate::Recorder;

    fn test_state() -> (AdminState, Arc<Collector>, Arc<FlightRecorder>) {
        let collector = Arc::new(Collector::new());
        let flight = Arc::new(FlightRecorder::new(64));
        let state = AdminState {
            collector: collector.clone(),
            flight: Some(flight.clone()),
            health: HealthFlags::up(),
        };
        (state, collector, flight)
    }

    fn get(addr: SocketAddr, path: &str) -> HttpResponse {
        http_get(addr, path, Duration::from_secs(2)).expect("admin request")
    }

    #[test]
    fn serves_metrics_health_vars_and_flightrec() {
        let (state, collector, flight) = test_state();
        let health = state.health.clone();
        let admin = AdminServer::bind("127.0.0.1:0", state).expect("bind admin");
        let addr = admin.local_addr();

        collector.count("net.fanout.bytes", 4242);
        collector.time("net.propagation", 125_000);
        flight.record(FlightKind::EpochPublish, 1, 512);

        let metrics = get(addr, "/metrics");
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("net_fanout_bytes_total 4242"));
        crate::prom::validate(&metrics.body).expect("served metrics validate");

        assert_eq!(get(addr, "/healthz").status, 200);
        assert_eq!(get(addr, "/readyz").status, 200);

        let vars = get(addr, "/vars");
        let doc = crate::json::parse(&vars.body).expect("vars is JSON");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("net.fanout.bytes"))
                .and_then(|v| v.as_num()),
            Some(4242.0)
        );
        assert!(doc
            .get("hists")
            .and_then(|h| h.get("net.propagation"))
            .and_then(|h| h.get("p99_ns"))
            .is_some());

        let rec = get(addr, "/flightrec");
        assert_eq!(rec.status, 200);
        assert!(rec.body.contains("\"kind\":\"epoch_publish\""));

        assert_eq!(get(addr, "/nope").status, 404);

        // Drain flips health while the responder stays up.
        health.begin_drain();
        assert_eq!(get(addr, "/healthz").status, 503);
        assert_eq!(get(addr, "/readyz").status, 503);
        assert_eq!(get(addr, "/metrics").status, 200, "metrics survive drain");

        admin.shutdown();
    }

    #[test]
    fn non_get_requests_are_refused() {
        let (state, _, _) = test_state();
        let admin = AdminServer::bind("127.0.0.1:0", state).expect("bind admin");
        let addr = admin.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.0\r\n\r\n")
            .expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.0 405"), "{out}");
        admin.shutdown();
    }
}
