//! Fixed-bucket log₂ histograms.
//!
//! One bucket per power of two (64 buckets cover the full `u64`
//! range), so recording is O(1) with no allocation and quantiles are
//! accurate to within a factor of 2 — plenty for "where did the
//! nanoseconds go" profiling, and cheap enough to sit on hot paths.

/// A histogram with one bucket per power of two of the recorded value.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Count, sum, and exact min/max are tracked on the
/// side, so `mean()` is exact and quantile estimates are clamped to
/// the observed range.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`.
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`): the geometric
    /// midpoint of the bucket containing the quantile rank, clamped to
    /// the observed `[min, max]`. Accurate to within 2×.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let estimate = if i == 0 {
                    0
                } else {
                    // Geometric midpoint of [2^(i-1), 2^i).
                    let lo = 1u64 << (i - 1);
                    lo + lo / 2
                };
                return estimate.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Raw bucket occupancy plus the occupied index range, for
    /// exporters that render cumulative buckets: returns
    /// `(buckets, lowest, highest)` where `lowest..=highest` spans the
    /// non-zero buckets (`(_, 0, 0)` when empty). Bucket `i` holds
    /// values below `2^i`, so `2^i` is its natural `le` upper bound.
    pub fn bucket_counts(&self) -> (&[u64; 65], usize, usize) {
        let lowest = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let highest = self.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        (&self.buckets, lowest, highest)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn exact_stats_tracked() {
        let mut h = Log2Histogram::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn quantiles_within_factor_of_two() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q) as f64;
            assert!(
                est >= exact / 2.0 && est <= exact * 2.0,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn quantile_clamped_to_observed_range() {
        let mut h = Log2Histogram::new();
        h.record(1000);
        assert_eq!(h.quantile(0.5), 1000);
        assert_eq!(h.quantile(0.99), 1000);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 505);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }
}
