//! The standard in-memory [`Recorder`]: collects spans, counters,
//! histograms, and gauge samples for later export.

use crate::hist::Log2Histogram;
use crate::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Hard cap on retained raw span events. Aggregates (histograms,
/// counters) keep growing past the cap; only the per-event trace is
/// truncated, and the number of dropped spans is reported in both
/// exporters so truncation is never silent.
pub(crate) const MAX_SPANS: usize = 1 << 20;

/// Cap on retained gauge samples, same policy as [`MAX_SPANS`].
pub(crate) const MAX_SAMPLES: usize = 1 << 20;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (dotted, e.g. `rekey.plan`).
    pub name: &'static str,
    /// Start, nanoseconds since [`crate::now_ns`]'s epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense thread id ([`crate::thread_id`]).
    pub tid: u64,
}

/// One timestamped gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleEvent {
    /// Series name (e.g. `sim.message_bytes`).
    pub name: &'static str,
    /// Timestamp, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: f64,
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanEvent>,
    dropped_spans: u64,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Log2Histogram>,
    samples: Vec<SampleEvent>,
    dropped_samples: u64,
}

/// An immutable copy of everything a [`Collector`] has recorded.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Raw span events, in completion order.
    pub spans: Vec<SpanEvent>,
    /// Spans discarded after the retention cap was hit.
    pub dropped_spans: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Duration histograms by name (spans feed these too).
    pub hists: BTreeMap<&'static str, Log2Histogram>,
    /// Gauge samples, in record order.
    pub samples: Vec<SampleEvent>,
    /// Samples discarded after the retention cap was hit.
    pub dropped_samples: u64,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds accumulated under span/timer `name`.
    pub fn total_time_ns(&self, name: &str) -> u64 {
        self.hists.get(name).map(Log2Histogram::sum).unwrap_or(0)
    }
}

/// The standard in-memory recorder.
///
/// Thread-safe via one internal mutex: the rekey hot paths only record
/// when observability is explicitly enabled, and even then per-event
/// critical sections are a few branches and a push.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<Inner>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock only interrupts metric
        // recording; the data remains structurally sound.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            spans: inner.spans.clone(),
            dropped_spans: inner.dropped_spans,
            counters: inner.counters.clone(),
            hists: inner.hists.clone(),
            samples: inner.samples.clone(),
            dropped_samples: inner.dropped_samples,
        }
    }

    /// Renders the Chrome `trace_event` JSON for everything recorded.
    pub fn chrome_trace_json(&self) -> String {
        crate::chrome::render(&self.snapshot())
    }

    /// Renders the Prometheus-style text dump.
    pub fn prometheus_text(&self) -> String {
        crate::prom::render(&self.snapshot())
    }

    /// Writes the Chrome trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Writes the metrics text dump to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_metrics(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.prometheus_text())
    }
}

impl Recorder for Collector {
    fn span(&self, name: &'static str, start_ns: u64, dur_ns: u64, tid: u64) {
        let mut inner = self.lock();
        if inner.spans.len() < MAX_SPANS {
            inner.spans.push(SpanEvent {
                name,
                start_ns,
                dur_ns,
                tid,
            });
        } else {
            inner.dropped_spans += 1;
        }
        inner.hists.entry(name).or_default().record(dur_ns);
    }

    fn count(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn time(&self, name: &'static str, dur_ns: u64) {
        self.lock().hists.entry(name).or_default().record(dur_ns);
    }

    fn sample(&self, name: &'static str, ts_ns: u64, value: f64) {
        let mut inner = self.lock();
        if inner.samples.len() < MAX_SAMPLES {
            inner.samples.push(SampleEvent { name, ts_ns, value });
        } else {
            inner.dropped_samples += 1;
        }
    }

    fn total_time_ns(&self, name: &str) -> u64 {
        self.lock()
            .hists
            .get(name)
            .map(Log2Histogram::sum)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_feed_histograms() {
        let c = Collector::new();
        c.span("a", 0, 100, 1);
        c.span("a", 200, 300, 1);
        c.time("a", 50);
        let snap = c.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.hists["a"].count(), 3);
        assert_eq!(snap.total_time_ns("a"), 450);
        assert_eq!(c.total_time_ns("a"), 450);
        assert_eq!(c.total_time_ns("missing"), 0);
    }

    #[test]
    fn counters_accumulate() {
        let c = Collector::new();
        c.count("k", 1);
        c.count("k", 41);
        assert_eq!(c.snapshot().counter("k"), 42);
        assert_eq!(c.snapshot().counter("other"), 0);
    }

    #[test]
    fn samples_recorded_in_order() {
        let c = Collector::new();
        c.sample("g", 10, 1.0);
        c.sample("g", 20, 2.0);
        let snap = c.snapshot();
        assert_eq!(snap.samples.len(), 2);
        assert_eq!(snap.samples[1].value, 2.0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let c = std::sync::Arc::new(Collector::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.count("hits", 1);
                        c.span("work", i, 10, t);
                    }
                });
            }
        });
        let snap = c.snapshot();
        assert_eq!(snap.counter("hits"), 4000);
        assert_eq!(snap.spans.len(), 4000);
        assert_eq!(snap.hists["work"].count(), 4000);
    }
}
