//! A minimal JSON parser: used to validate exported traces and to
//! parse admin-endpoint responses (`/vars`, flight-recorder lines)
//! without external dependencies. Supports the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null).
//!
//! All failures are reported as [`ObsError::Json`] carrying the byte
//! offset where parsing stopped.

use crate::ObsError;
use std::collections::BTreeMap;

/// A JSON syntax error at a byte offset.
fn err(offset: usize, detail: impl Into<String>) -> ObsError {
    ObsError::Json {
        offset,
        detail: detail.into(),
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keyed in sorted order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Looks up `key` in an object (`None` for other kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
///
/// # Errors
///
/// [`ObsError::Json`] with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, ObsError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), ObsError> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(
            *pos,
            format!(
                "expected {:?}, found {:?}",
                ch as char,
                bytes.get(*pos).map(|&b| b as char)
            ),
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ObsError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_num(bytes, pos),
        other => Err(err(
            *pos,
            format!("unexpected {:?}", other.map(|&b| b as char)),
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, ObsError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, ObsError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| err(start, e.to_string()))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| err(start, format!("invalid number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ObsError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex).map_err(|e| err(*pos, e.to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, format!("bad \\u escape {hex:?}")))?;
                        // Surrogate pairs are not needed by our own
                        // exporter; map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(err(
                            *pos,
                            format!("bad escape {:?}", other.map(|&b| b as char)),
                        ));
                    }
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 is passed through unchanged.
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| err(*pos, "truncated UTF-8 sequence"))?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| err(*pos, e.to_string()))?);
                *pos += len;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, ObsError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, ObsError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse(r#""a\nbA""#).unwrap(),
            Value::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
    }
}
