//! Typed errors for trace parsing and validation.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong while parsing or validating an
/// exported trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// The document is not well-formed JSON.
    Json {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What the parser expected or found there.
        detail: String,
    },
    /// The JSON is well-formed but the trace document structure is
    /// wrong (missing `traceEvents`, wrong value kinds).
    Document(String),
    /// A specific trace event violates the exporter's invariants
    /// (missing fields, unknown phase, mismatched begin/end nesting).
    Event {
        /// Index of the offending event in `traceEvents`.
        index: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A span was still open when the trace ended.
    UnbalancedSpan {
        /// The span's name.
        name: String,
        /// The thread track it was open on.
        tid: u64,
    },
    /// A Prometheus exposition document violates the text format.
    Metrics {
        /// 1-based offending line (0 for document-level failures).
        line: usize,
        /// Which invariant it violates.
        detail: String,
    },
    /// An admin-plane HTTP exchange failed (connect, request, or a
    /// non-success status).
    Http {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Json { offset, detail } => {
                write!(f, "invalid JSON at byte {offset}: {detail}")
            }
            ObsError::Document(detail) => write!(f, "invalid trace document: {detail}"),
            ObsError::Event { index, detail } => write!(f, "event {index}: {detail}"),
            ObsError::UnbalancedSpan { name, tid } => {
                write!(f, "span {name:?} on tid {tid} never ends")
            }
            ObsError::Metrics { line: 0, detail } => {
                write!(f, "invalid metrics exposition: {detail}")
            }
            ObsError::Metrics { line, detail } => {
                write!(f, "invalid metrics exposition at line {line}: {detail}")
            }
            ObsError::Http { detail } => write!(f, "admin http: {detail}"),
        }
    }
}

impl Error for ObsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let err = ObsError::Json {
            offset: 7,
            detail: "unexpected '}'".into(),
        };
        assert_eq!(err.to_string(), "invalid JSON at byte 7: unexpected '}'");
        let err = ObsError::UnbalancedSpan {
            name: "rekey.plan".into(),
            tid: 3,
        };
        assert!(err.to_string().contains("never ends"));
    }
}
