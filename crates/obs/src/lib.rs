//! Zero-dependency tracing, metrics, and per-phase profiling for the
//! `rekey` workspace.
//!
//! The paper's claims are *measurements* (key-server bandwidth,
//! transport bandwidth), and every performance PR needs to know where
//! cycles and bytes go. This crate provides the observability substrate
//! the rest of the workspace instruments itself with:
//!
//! - [`span!`] — RAII scoped timers (`let _s = span!("rekey.plan");`)
//!   that record wall-clock spans per thread,
//! - [`count`] — monotonic counters (crypto ops, encrypted keys),
//! - [`sample`] — timestamped gauge samples (per-interval series),
//! - [`hist::Log2Histogram`] — fixed-bucket log₂ histograms giving
//!   p50/p90/p99/max without allocation per sample,
//! - [`Recorder`] — the sink trait; [`Collector`] is the standard
//!   in-memory implementation,
//! - [`chrome`] — Chrome `trace_event` JSON export (loadable in
//!   `about:tracing` / [Perfetto](https://ui.perfetto.dev)) plus a
//!   validator for the emitted format,
//! - [`prom`] — Prometheus text exposition (`# HELP`/`# TYPE`,
//!   cumulative histogram buckets) plus a validator for the format,
//! - [`flight::FlightRecorder`] — a lock-free ring of structured
//!   events ("what was the daemon doing right before the failure"),
//!   dumped as JSONL,
//! - [`admin`] — a zero-dependency HTTP/1.0 admin plane (`/metrics`,
//!   `/healthz`, `/readyz`, `/vars`, `/flightrec`) and the matching
//!   [`admin::http_get`] client used by `rekey top` and CI probes,
//! - [`json`] — the in-house JSON parser backing the validators and
//!   admin pollers.
//!
//! # Global or injected
//!
//! Instrumented code records through the process-global recorder
//! ([`install`] / [`uninstall`]). When nothing is installed every
//! probe is one relaxed atomic load and a predictable branch — cheap
//! enough for per-call sites inside ChaCha20 and HMAC. Code that wants
//! explicit wiring can instead hold an `Arc<Collector>` (or any
//! [`Recorder`]) and call its methods directly; the global hooks are a
//! convenience, not a requirement.
//!
//! # Example
//!
//! ```
//! use rekey_obs::{Collector, span};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(Collector::new());
//! rekey_obs::install(collector.clone());
//! {
//!     let _outer = span!("work.outer");
//!     let _inner = span!("work.inner");
//!     rekey_obs::count("work.items", 3);
//! }
//! rekey_obs::uninstall();
//!
//! let snap = collector.snapshot();
//! assert_eq!(snap.counter("work.items"), 3);
//! let json = collector.chrome_trace_json();
//! rekey_obs::chrome::validate_trace(&json).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod chrome;
pub mod flight;
pub mod hist;
pub mod json;
pub mod prom;

mod collect;
mod error;
mod recorder;

pub use admin::{AdminServer, AdminState, HealthFlags};
pub use collect::{Collector, MetricsSnapshot, SampleEvent, SpanEvent};
pub use error::ObsError;
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use recorder::{
    count, enabled, install, now_ns, sample, thread_id, time_ns, total_time_ns, uninstall,
    Recorder, SpanGuard,
};

/// Opens a scoped wall-clock span: the returned guard records the span
/// to the global [`Recorder`] when dropped. Bind it to a named `_xyz`
/// variable — `let _ = span!(..)` drops immediately.
///
/// When no recorder is installed the guard is inert and costs one
/// atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::new($name)
    };
}
