//! A lock-free flight recorder: the last N structured events before
//! "something happened", dumped as JSONL.
//!
//! Post-hoc traces answer "where did the nanoseconds go"; a flight
//! recorder answers "what was the daemon *doing* right before the
//! failure". [`FlightRecorder`] is a fixed-size ring of fixed-size
//! events (kind + timestamp + two `u64` operands) written with a
//! per-slot seqlock: recording is a `fetch_add` on the write cursor
//! plus four relaxed stores — no mutex, no allocation, safe from every
//! shard thread at once. Readers ([`FlightRecorder::dump_jsonl`])
//! detect in-flight writes by the slot sequence number and skip torn
//! slots instead of blocking writers.
//!
//! Memory is bounded by construction: `capacity × 40` bytes, allocated
//! once. A 4096-event recorder costs 160 KiB and covers several
//! seconds of heavy churn.

use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. The two operands `a`/`b` carry kind-specific detail
/// (documented per variant); both are rendered under kind-specific
/// JSON keys by the dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlightKind {
    /// A session was accepted and authenticated. `a` = member id.
    Accept,
    /// A handshake failed. `a` = reject reason code (0 = I/O error).
    HandshakeFail,
    /// A NACK arrived. `a` = member id, `b` = number of epochs asked.
    Nack,
    /// An epoch was retransmitted from the window. `a` = member id,
    /// `b` = epoch.
    Retransmit,
    /// A NACKed epoch was already evicted. `a` = member id, `b` = the
    /// evicted epoch.
    Gap,
    /// A session was dropped for falling behind. `a` = member id,
    /// `b` = queue depth at disconnect.
    BackpressureDrop,
    /// One epoch hit the fan-out. `a` = epoch, `b` = framed bytes.
    EpochPublish,
    /// A session closed (EOF, error, or `Bye`). `a` = member id.
    SessionClosed,
    /// A client reported end-to-end propagation. `a` = epoch,
    /// `b` = lag in nanoseconds.
    PropagationAck,
}

impl FlightKind {
    fn code(self) -> u64 {
        match self {
            FlightKind::Accept => 1,
            FlightKind::HandshakeFail => 2,
            FlightKind::Nack => 3,
            FlightKind::Retransmit => 4,
            FlightKind::Gap => 5,
            FlightKind::BackpressureDrop => 6,
            FlightKind::EpochPublish => 7,
            FlightKind::SessionClosed => 8,
            FlightKind::PropagationAck => 9,
        }
    }

    fn from_code(code: u64) -> Option<FlightKind> {
        Some(match code {
            1 => FlightKind::Accept,
            2 => FlightKind::HandshakeFail,
            3 => FlightKind::Nack,
            4 => FlightKind::Retransmit,
            5 => FlightKind::Gap,
            6 => FlightKind::BackpressureDrop,
            7 => FlightKind::EpochPublish,
            8 => FlightKind::SessionClosed,
            9 => FlightKind::PropagationAck,
            _ => return None,
        })
    }

    /// Stable JSONL name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Accept => "accept",
            FlightKind::HandshakeFail => "handshake_fail",
            FlightKind::Nack => "nack",
            FlightKind::Retransmit => "retransmit",
            FlightKind::Gap => "gap",
            FlightKind::BackpressureDrop => "backpressure_drop",
            FlightKind::EpochPublish => "epoch_publish",
            FlightKind::SessionClosed => "session_closed",
            FlightKind::PropagationAck => "propagation_ack",
        }
    }

    /// JSON key names for the `a` and `b` operands.
    fn field_names(self) -> (&'static str, &'static str) {
        match self {
            FlightKind::Accept => ("member", "b"),
            FlightKind::HandshakeFail => ("reason", "b"),
            FlightKind::Nack => ("member", "epochs"),
            FlightKind::Retransmit => ("member", "epoch"),
            FlightKind::Gap => ("member", "epoch"),
            FlightKind::BackpressureDrop => ("member", "depth"),
            FlightKind::EpochPublish => ("epoch", "bytes"),
            FlightKind::SessionClosed => ("member", "b"),
            FlightKind::PropagationAck => ("epoch", "lag_ns"),
        }
    }
}

/// One decoded flight event, as read back by [`FlightRecorder::events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// What happened.
    pub kind: FlightKind,
    /// When, on the [`crate::now_ns`] timeline.
    pub ts_ns: u64,
    /// First kind-specific operand.
    pub a: u64,
    /// Second kind-specific operand.
    pub b: u64,
}

/// One ring slot: a seqlock sequence word plus the event payload.
///
/// `seq` is 0 while empty, odd while a writer owns the slot, and
/// `2 × (generation + 1)` once the write of that generation completed.
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    ts_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// The fixed-size, lock-free event ring. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (clamped to a
    /// minimum of 16; memory is `capacity × 40` bytes, fixed).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Number of events this ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one event, timestamped now. Wait-free for writers: one
    /// `fetch_add` and five relaxed/release stores.
    #[inline]
    pub fn record(&self, kind: FlightKind, a: u64, b: u64) {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(n % cap) as usize];
        let generation = n / cap;
        // Claim: odd sequence marks the slot as mid-write.
        slot.seq.store(2 * generation + 1, Ordering::Release);
        slot.ts_ns.store(crate::now_ns(), Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        // Publish: even sequence of this generation.
        slot.seq.store(2 * (generation + 1), Ordering::Release);
    }

    /// Reads back the retained events, oldest first. Slots currently
    /// being overwritten (or lapped mid-read) are skipped rather than
    /// returned torn.
    pub fn events(&self) -> Vec<FlightEvent> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let retained = cursor.min(cap);
        let mut out = Vec::with_capacity(retained as usize);
        for n in cursor - retained..cursor {
            let slot = &self.slots[(n % cap) as usize];
            let expected = 2 * (n / cap + 1);
            if slot.seq.load(Ordering::Acquire) != expected {
                continue; // mid-write or already lapped
            }
            let event = FlightEvent {
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                kind: match FlightKind::from_code(slot.kind.load(Ordering::Relaxed)) {
                    Some(kind) => kind,
                    None => continue,
                },
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            // Confirm the slot was not overwritten while we read it.
            if slot.seq.load(Ordering::Acquire) == expected {
                out.push(event);
            }
        }
        out
    }

    /// Renders the retained events as JSONL (one compact JSON object
    /// per line, oldest first) — the `/flightrec` admin payload and
    /// the panic/SIGTERM dump format.
    pub fn dump_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 64);
        for e in events {
            let (ka, kb) = e.kind.field_names();
            let _ = write!(
                out,
                "{{\"ts_ns\":{},\"kind\":\"{}\",\"{ka}\":{}",
                e.ts_ns,
                e.kind.name(),
                e.a
            );
            if kb != "b" || e.b != 0 {
                let _ = write!(out, ",\"{kb}\":{}", e.b);
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let rec = FlightRecorder::new(64);
        rec.record(FlightKind::Accept, 7, 0);
        rec.record(FlightKind::EpochPublish, 3, 512);
        rec.record(FlightKind::BackpressureDrop, 7, 1024);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, FlightKind::Accept);
        assert_eq!(events[0].a, 7);
        assert_eq!(events[1].kind, FlightKind::EpochPublish);
        assert_eq!(events[2].b, 1024);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_retains_only_the_newest() {
        let rec = FlightRecorder::new(16);
        for i in 0..100u64 {
            rec.record(FlightKind::EpochPublish, i, 0);
        }
        let events = rec.events();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().a, 84);
        assert_eq!(events.last().unwrap().a, 99);
        assert_eq!(rec.recorded(), 100);
    }

    #[test]
    fn dump_is_valid_jsonl() {
        let rec = FlightRecorder::new(32);
        rec.record(FlightKind::Nack, 5, 3);
        rec.record(FlightKind::Gap, 5, 1);
        rec.record(FlightKind::PropagationAck, 9, 120_000);
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let value = crate::json::parse(line).expect("every line is JSON");
            assert!(value.get("ts_ns").is_some());
            assert!(value.get("kind").is_some());
        }
        assert!(lines[0].contains("\"kind\":\"nack\""));
        assert!(lines[0].contains("\"epochs\":3"));
        assert!(lines[2].contains("\"lag_ns\":120000"));
    }

    #[test]
    fn empty_recorder_dumps_empty() {
        let rec = FlightRecorder::new(16);
        assert!(rec.events().is_empty());
        assert!(rec.dump_jsonl().is_empty());
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_ring() {
        let rec = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        rec.record(FlightKind::EpochPublish, t, i);
                    }
                });
            }
            // Concurrent reads must never tear or panic.
            let reader = rec.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    for e in reader.events() {
                        assert!(e.a < 4, "torn slot leaked a bogus operand");
                    }
                }
            });
        });
        assert_eq!(rec.recorded(), 20_000);
        assert_eq!(rec.events().len(), 64);
    }
}
