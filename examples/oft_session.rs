//! A session on a one-way function tree ([BM00], §2.1.1 of the paper):
//! the *other* logical key hierarchy the paper's optimizations apply
//! to, with half the eviction bandwidth of a binary LKH tree.
//!
//! Shows the full wire protocol: the server multicasts structural
//! deltas plus encrypted blinds; each member maintains only its leaf
//! key and one blinded key per level, and recomputes the group key
//! locally after every change.
//!
//! Run with: `cargo run --example oft_session`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::Key;
use rekey_keytree::oft::{OftMember, OftServer};
use rekey_keytree::MemberId;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1903);
    let mut server = OftServer::new(0);
    let mut members: BTreeMap<MemberId, OftMember> = BTreeMap::new();

    println!("== Eight members join one at a time ==");
    for i in 0..8u64 {
        let id = MemberId(i);
        let ik = Key::generate(&mut rng);
        let broadcast = server.join(id, &ik, &mut rng)?;
        let mut state = OftMember::new(id, ik);
        state.process(&broadcast)?;
        for m in members.values_mut() {
            m.process(&broadcast)?;
        }
        members.insert(id, state);
        println!(
            "  {id} joined: {} ops, {} encrypted items; group key {}…",
            broadcast.ops.len(),
            broadcast.encrypted_key_count(),
            server.root_key().expect("non-empty").fingerprint()
        );
    }
    for (id, m) in &members {
        assert_eq!(
            m.group_key().as_ref(),
            server.root_key(),
            "{id} out of sync"
        );
    }
    println!("  all 8 members compute the same group key\n");

    println!("== u3 is evicted ==");
    let mut evicted = members.remove(&MemberId(3)).expect("present");
    let broadcast = server.leave(MemberId(3), &mut rng)?;
    println!(
        "  eviction broadcast: {} ops, only {} encrypted items (LKH d=2 would need ~2h = {})",
        broadcast.ops.len(),
        broadcast.encrypted_key_count(),
        2 * server.height() + 2,
    );
    for m in members.values_mut() {
        m.process(&broadcast)?;
    }
    // The evicted member watches the multicast too — and stays locked
    // out.
    let _ = evicted.process(&broadcast);
    assert_ne!(
        evicted.group_key().as_ref(),
        server.root_key(),
        "forward secrecy violated"
    );
    for (id, m) in &members {
        assert_eq!(
            m.group_key().as_ref(),
            server.root_key(),
            "{id} out of sync"
        );
    }
    println!(
        "  survivors hold {}…; u3 cannot compute it (forward secrecy)",
        server.root_key().expect("non-empty").fingerprint()
    );
    println!("\noft_session OK");
    Ok(())
}
