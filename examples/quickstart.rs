//! Quickstart: the paper's Fig. 1 walkthrough.
//!
//! Builds the example logical key tree of nine members (degree 3),
//! runs the §2.1 join procedure for U9 and the departure procedure for
//! U4, and shows that every remaining member recovers the new group
//! key from the multicast rekey messages while the departed member
//! cannot.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use std::collections::BTreeMap;

fn describe(message: &RekeyMessage) {
    println!(
        "  multicast rekey message: {} encrypted keys, {} bytes",
        message.encrypted_key_count(),
        message.byte_len()
    );
    for entry in &message.entries {
        let to = entry
            .recipient
            .map(|m| format!(" (for {m})"))
            .unwrap_or_default();
        println!(
            "    {{K[{}] v{}}} encrypted with K[{}] v{}{to}, needed by {} member(s)",
            entry.target, entry.target_version, entry.under, entry.under_version, entry.audience
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2003);

    // The key server maintains the logical key tree of Fig. 1:
    // degree 3, users U1..U8 to start with.
    let mut server = LkhServer::new(3, 0);
    let mut members: BTreeMap<MemberId, GroupMember> = BTreeMap::new();

    println!("== Bootstrap: U1..U8 join as one batch ==");
    let joins: Vec<(MemberId, Key)> = (1..=8)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    let outcome = server.apply_batch(&joins, &[], &mut rng);
    for (id, ik) in &joins {
        let mut state = GroupMember::new(*id, ik.clone());
        state.process(&outcome.message)?;
        members.insert(*id, state);
    }
    describe(&outcome.message);
    println!(
        "  group of {} members, tree height {}, group key {}…\n",
        server.member_count(),
        server.tree().height(),
        server.root_key().fingerprint()
    );

    // -- Join procedure (§2.1): U9 joins --------------------------------
    println!("== Join procedure: U9 joins ==");
    let u9_key = Key::generate(&mut rng);
    let message = server.join(MemberId(9), u9_key.clone(), &mut rng);
    describe(&message);

    let mut u9 = GroupMember::new(MemberId(9), u9_key);
    u9.process(&message)?;
    for state in members.values_mut() {
        state.process(&message)?;
    }
    members.insert(MemberId(9), u9);
    println!(
        "  every member now holds the new group key {}…",
        server.root_key().fingerprint()
    );
    for state in members.values() {
        assert_eq!(state.key_for(server.root_node()), Some(server.root_key()));
    }
    println!("  U9 cannot read traffic recorded before its join (backward secrecy)\n");

    // -- Departure procedure (§2.1): U4 leaves --------------------------
    println!("== Departure procedure: U4 departs ==");
    let message = server.leave(MemberId(4), &mut rng)?;
    describe(&message);

    for (id, state) in members.iter_mut() {
        // Everyone sees the multicast — including the departed member.
        let _ = state.process(&message);
        if *id == MemberId(4) {
            assert_ne!(
                state.key_for(server.root_node()),
                Some(server.root_key()),
                "forward secrecy violated"
            );
        } else {
            assert_eq!(
                state.key_for(server.root_node()),
                Some(server.root_key()),
                "member {id} lost the group key"
            );
        }
    }
    println!(
        "  survivors hold the new group key {}…; U4 cannot decrypt it (forward secrecy)",
        server.root_key().fingerprint()
    );
    println!("\nquickstart OK");
    Ok(())
}
