//! The adaptive deployment loop of §3.4.
//!
//! "At the beginning of a session, the key server just maintains one
//! key tree; later, from its collected trace data it can compute the
//! group statistics such as Ms, Ml, and α. Then using our analytic
//! model, the key server can choose the best scheme to use."
//!
//! This example runs a session whose churn the operator did not know
//! in advance: the server starts with a single key tree, collects the
//! membership trace, fits the two-class exponential mixture, consults
//! the analytic model, and switches to the recommended two-partition
//! scheme — then shows the realized savings.
//!
//! Run with: `cargo run --release --example adaptive_server`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::adaptive::{recommend, SchemeChoice, TraceCollector};
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{QtManager, TtManager};
use rekey_core::{GroupKeyManager, Join};
use rekey_crypto::Key;
use rekey_sim::membership::{MembershipGenerator, MembershipParams};

const N: usize = 2048;
const OBSERVE_INTERVALS: usize = 60;
const MEASURE_INTERVALS: usize = 30;

fn main() {
    let params = MembershipParams {
        target_size: N,
        ..MembershipParams::paper_default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut generator = MembershipGenerator::new(params, &mut rng);

    // Phase 1: one key tree + trace collection.
    let mut manager = OneTreeManager::new(4);
    let mut collector = TraceCollector::new(8192);
    let mut clock = 0.0f64;

    // Bootstrap the pre-populated group.
    let joins: Vec<Join> = (0..generator.population() as u64)
        .map(|i| {
            collector.record_join(rekey_keytree::MemberId(i), clock);
            Join::new(rekey_keytree::MemberId(i), Key::generate(&mut rng))
        })
        .collect();
    manager.process_interval(&joins, &[], &mut rng).unwrap();

    println!("Phase 1: single key tree, observing the session…");
    let mut phase1_keys = 0usize;
    for _ in 0..OBSERVE_INTERVALS {
        clock += params.rekey_period;
        let events = generator.next_interval(&mut rng);
        let joins: Vec<Join> = events
            .joins
            .iter()
            .map(|&(m, _)| {
                collector.record_join(m, clock);
                Join::new(m, Key::generate(&mut rng))
            })
            .collect();
        for &m in &events.leaves {
            collector.record_leave(m, clock);
        }
        let out = manager
            .process_interval(&joins, &events.leaves, &mut rng)
            .unwrap();
        phase1_keys += out.stats.encrypted_keys;
    }
    let phase1_mean = phase1_keys as f64 / OBSERVE_INTERVALS as f64;
    println!(
        "  observed {} completed memberships; one-keytree cost {:.0} keys/interval\n",
        collector.sample_count(),
        phase1_mean
    );

    // Phase 2: fit the mixture and consult the model.
    let estimate = collector.estimate();
    match &estimate {
        Some(e) => println!(
            "Fitted duration mixture: α̂ = {:.2}, M̂s = {:.0} s, M̂l = {:.0} s ({} samples)",
            e.alpha, e.mean_short, e.mean_long, e.samples
        ),
        None => println!("No bimodality detected; the one-keytree scheme is appropriate."),
    }
    let rec = recommend(N as u64, 4, params.rekey_period, estimate, 20);
    println!(
        "Model recommendation: {:?} (predicted {:.0} vs {:.0} keys/interval)\n",
        rec.scheme, rec.predicted_cost, rec.one_keytree_cost
    );

    // Phase 3: switch to the recommended scheme. Switching re-admits
    // the current population into the new structure once (a one-off
    // cost amortized over the rest of the session).
    let mut new_manager: Box<dyn GroupKeyManager> = match rec.scheme {
        SchemeChoice::OneKeytree => Box::new(OneTreeManager::new(4)),
        SchemeChoice::Tt { k } => Box::new(TtManager::new(4, k as u64)),
        SchemeChoice::Qt { k } => Box::new(QtManager::new(4, k as u64)),
    };
    let members = manager.members_under(manager.dek_node());
    let rejoin: Vec<Join> = members
        .iter()
        .map(|&m| Join::new(m, Key::generate(&mut rng)))
        .collect();
    new_manager
        .process_interval(&rejoin, &[], &mut rng)
        .unwrap();
    println!(
        "Phase 3: switched to {} with {} members",
        new_manager.scheme_name(),
        new_manager.member_count()
    );

    let mut phase3_keys = 0usize;
    let mut measured = 0usize;
    for step in 0..(MEASURE_INTERVALS + 15) {
        let events = generator.next_interval(&mut rng);
        let joins: Vec<Join> = events
            .joins
            .iter()
            .map(|&(m, _)| Join::new(m, Key::generate(&mut rng)))
            .collect();
        let out = new_manager
            .process_interval(&joins, &events.leaves, &mut rng)
            .unwrap();
        // Skip the first intervals while partitions fill.
        if step >= 15 {
            phase3_keys += out.stats.encrypted_keys;
            measured += 1;
        }
    }
    let phase3_mean = phase3_keys as f64 / measured as f64;
    println!(
        "  {} cost {:.0} keys/interval — {:.1}% below the observed one-keytree phase",
        new_manager.scheme_name(),
        phase3_mean,
        100.0 * (1.0 - phase3_mean / phase1_mean)
    );
}
