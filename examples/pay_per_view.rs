//! A pay-per-view broadcast session (the paper's motivating workload):
//! most viewers sample the stream for a few minutes, a minority stays
//! for hours ([AA97] MBone behaviour).
//!
//! Runs the same simulated session under all four schemes — the
//! one-keytree baseline and the paper's QT / TT / PT two-partition
//! schemes — and reports the key-server bandwidth of each, next to the
//! analytic model's prediction.
//!
//! Run with: `cargo run --release --example pay_per_view`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_analytic::partition::PartitionParams;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{PtManager, QtManager, TtManager};
use rekey_core::GroupKeyManager;
use rekey_sim::driver::{run_scheme, SimConfig};
use rekey_sim::membership::{MembershipGenerator, MembershipParams};

const SUBSCRIBERS: usize = 4096;
const K: u64 = 10;
const SEED: u64 = 42;

fn simulate(manager: &mut dyn GroupKeyManager, oracle: bool) -> f64 {
    let params = MembershipParams {
        target_size: SUBSCRIBERS,
        ..MembershipParams::paper_default()
    };
    let config = SimConfig {
        intervals: 40,
        warmup: 15,
        oracle_hints: oracle,
        ..SimConfig::quick()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut generator = MembershipGenerator::new(params, &mut rng);
    run_scheme(manager, &mut generator, &config, &mut rng).mean_keys_per_interval
}

fn main() {
    println!("Pay-per-view session: {SUBSCRIBERS} subscribers, 80% channel-surfers");
    println!("(mean stay 3 min) and 20% committed viewers (mean stay 3 h);");
    println!("rekeying every 60 s, S-period K = {K} intervals.\n");

    let model = PartitionParams {
        group_size: SUBSCRIBERS as u64,
        k: K as u32,
        ..PartitionParams::paper_default()
    };
    let predicted = model.costs();

    let mut one = OneTreeManager::new(4);
    let mut tt = TtManager::new(4, K);
    let mut qt = QtManager::new(4, K);
    let mut pt = PtManager::new(4);

    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "one-keytree",
            simulate(&mut one, false),
            predicted.one_keytree,
        ),
        ("TT-scheme", simulate(&mut tt, false), predicted.tt),
        ("QT-scheme", simulate(&mut qt, false), predicted.qt),
        ("PT-scheme (oracle)", simulate(&mut pt, true), predicted.pt),
    ];

    let baseline = rows[0].1;
    println!(
        "{:<20} {:>14} {:>14} {:>10}",
        "scheme", "measured", "model", "savings"
    );
    println!("{}", "-".repeat(62));
    for (name, measured, model) in &rows {
        println!(
            "{:<20} {:>10.0} keys {:>10.0} keys {:>9.1}%",
            name,
            measured,
            model,
            100.0 * (1.0 - measured / baseline)
        );
    }
    println!("\n(measured = mean encrypted keys per 60 s rekey interval over the");
    println!(" simulated session; model = §3.3.1 steady-state prediction)");
}
