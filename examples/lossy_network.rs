//! Rekeying a group over a heterogeneous lossy network (§4): a
//! fraction of receivers sits behind congested links (20% packet
//! loss), the rest enjoy clean paths (2%).
//!
//! Compares the reliable rekey transport bandwidth of a single mixed
//! key tree against the paper's loss-homogenized two-tree forest, on
//! the *executable* WKA-BKR protocol with simulated per-packet loss,
//! and shows the multi-send and proactive-FEC baselines.
//!
//! Run with: `cargo run --release --example lossy_network`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::loss_forest::LossForestManager;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::{GroupKeyManager, Join};
use rekey_crypto::Key;
use rekey_keytree::MemberId;
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::{fec, multisend, wka_bkr};

const N: u64 = 2048;
const LEAVERS: u64 = 32;
const HIGH_LOSS_FRACTION: f64 = 0.3;
const P_HIGH: f64 = 0.2;
const P_LOW: f64 = 0.02;

struct Session {
    manager: Box<dyn GroupKeyManager>,
    population: Population,
    present: Vec<MemberId>,
}

/// Builds a group where member i is high-loss iff `i % 10 <
/// 10·HIGH_LOSS_FRACTION`, admits everyone (with loss hints), and
/// evicts a spread of members; returns the manager, the loss
/// population, and the rekey message to deliver.
fn build(
    manager: Box<dyn GroupKeyManager>,
    seed: u64,
) -> (Session, rekey_keytree::message::RekeyMessage) {
    let mut manager = manager;
    let mut rng = StdRng::seed_from_u64(seed);
    let threshold = (10.0 * HIGH_LOSS_FRACTION) as u64;
    let mut losses = std::collections::BTreeMap::new();
    let joins: Vec<Join> = (0..N)
        .map(|i| {
            let loss = if i % 10 < threshold { P_HIGH } else { P_LOW };
            losses.insert(MemberId(i), loss);
            Join::new(MemberId(i), Key::generate(&mut rng)).with_loss_rate(loss)
        })
        .collect();
    manager.process_interval(&joins, &[], &mut rng).unwrap();

    let leavers: Vec<MemberId> = (0..LEAVERS).map(|i| MemberId(i * 61)).collect();
    let out = manager.process_interval(&[], &leavers, &mut rng).unwrap();
    for m in &leavers {
        losses.remove(m);
    }
    let present: Vec<MemberId> = losses.keys().copied().collect();
    (
        Session {
            manager,
            population: Population::from_map(losses),
            present,
        },
        out.message,
    )
}

fn main() {
    println!(
        "Group of {N} receivers; {:.0}% behind lossy links (p={P_HIGH}), rest p={P_LOW}.",
        HIGH_LOSS_FRACTION * 100.0
    );
    println!(
        "{LEAVERS} members are evicted in one batch; the rekey message must reach everyone.\n"
    );

    let runs = 5u64;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    for (label, homogenized) in [
        ("one mixed key tree", false),
        ("loss-homogenized forest", true),
    ] {
        let (mut keys, mut rounds) = (0usize, 0usize);
        for seed in 0..runs {
            let manager: Box<dyn GroupKeyManager> = if homogenized {
                Box::new(LossForestManager::two_trees(4))
            } else {
                Box::new(OneTreeManager::new(4))
            };
            let (session, message) = build(manager, seed);
            let interest = interest_map(&message, |n, out| {
                session.manager.members_under_into(n, out)
            });
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let outcome = wka_bkr::deliver(
                &message,
                &interest,
                &session.population,
                &wka_bkr::WkaBkrConfig::default(),
                &mut rng,
            );
            assert!(outcome.report.complete);
            keys += outcome.report.keys_transmitted;
            rounds += outcome.report.rounds;
            let _ = session.present;
        }
        rows.push((
            format!("WKA-BKR, {label}"),
            keys as f64 / runs as f64,
            rounds as f64 / runs as f64,
        ));
    }

    // Baselines on the mixed tree.
    {
        let (mut keys, mut rounds) = (0usize, 0usize);
        for seed in 0..runs {
            let (session, message) = build(Box::new(OneTreeManager::new(4)), seed);
            let interest = interest_map(&message, |n, out| {
                session.manager.members_under_into(n, out)
            });
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let outcome = fec::deliver(
                &message,
                &interest,
                &session.population,
                &fec::FecConfig::default(),
                &mut rng,
            );
            assert!(outcome.report.complete);
            keys += outcome.report.keys_transmitted;
            rounds += outcome.report.rounds;
        }
        rows.push((
            "proactive FEC, one mixed key tree".into(),
            keys as f64 / runs as f64,
            rounds as f64 / runs as f64,
        ));
    }
    {
        let (mut keys, mut rounds) = (0usize, 0usize);
        for seed in 0..runs {
            let (session, message) = build(Box::new(OneTreeManager::new(4)), seed);
            let interest = interest_map(&message, |n, out| {
                session.manager.members_under_into(n, out)
            });
            let mut rng = StdRng::seed_from_u64(3000 + seed);
            let report = multisend::deliver(
                &message,
                &interest,
                &session.population,
                &multisend::MultiSendConfig::default(),
                &mut rng,
            );
            assert!(report.complete);
            keys += report.keys_transmitted;
            rounds += report.rounds;
        }
        rows.push((
            "multi-send, one mixed key tree".into(),
            keys as f64 / runs as f64,
            rounds as f64 / runs as f64,
        ));
    }

    println!(
        "{:<38} {:>16} {:>8}",
        "protocol / organization", "keys transmitted", "rounds"
    );
    println!("{}", "-".repeat(64));
    for (label, keys, rounds) in &rows {
        println!("{label:<38} {keys:>16.0} {rounds:>8.1}");
    }
    let mixed = rows[0].1;
    let homog = rows[1].1;
    println!(
        "\nLoss homogenization saves {:.1}% of WKA-BKR rekey bandwidth on this group",
        100.0 * (1.0 - homog / mixed)
    );
    println!("(every receiver obtained all of its keys in every run)");
}
